"""Property-based tests: cache-key injectivity and persistence losslessness."""

import dataclasses

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.counters.metrics import TaskloopCounters
from repro.exp.cache import decode_run, encode_run, run_key, run_to_json
from repro.exp.figures import OverheadRow, SpeedupRow, ThreadsRow, VariabilityRow
from repro.exp.persistence import load_results, save_results
from repro.interference.noise import NoiseParams
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import AppRunResult, TaskloopResult
from repro.topology.presets import tiny_two_node

_TOPO_FP = "0" * 64  # a fixed pre-computed fingerprint; keys only mix it in

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)


noise_params = st.one_of(
    st.none(),
    st.builds(
        NoiseParams,
        mean_interval=positive,
        mean_duration=positive,
        slow_factor=st.floats(min_value=0.01, max_value=0.99),
        cores_fraction=st.floats(min_value=0.01, max_value=1.0),
    ),
)

_FIELD_STRATEGIES = {
    "benchmark": st.sampled_from(["ft", "bt", "cg", "lu", "sp", "matmul", "lulesh"]),
    "scheduler": st.sampled_from(["baseline", "ilan", "ilan-nomold", "worksharing"]),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
    "timesteps": st.one_of(st.none(), st.integers(min_value=1, max_value=200)),
    "noise": noise_params,
}

key_configs = st.fixed_dictionaries(_FIELD_STRATEGIES)


@settings(max_examples=80)
@given(a=key_configs, b=key_configs)
def test_key_equality_iff_config_equality(a, b):
    """Keys collide exactly when the full configuration is identical."""
    key_a = run_key(topology=_TOPO_FP, **a)
    key_b = run_key(topology=_TOPO_FP, **b)
    assert (key_a == key_b) == (a == b)


@settings(max_examples=60, suppress_health_check=[HealthCheck.large_base_example])
@given(cfg=key_configs, data=st.data())
def test_single_field_perturbation_changes_key(cfg, data):
    """Any changed config field yields a different key (injectivity)."""
    field = data.draw(st.sampled_from(sorted(cfg)), label="perturbed field")
    value = data.draw(
        _FIELD_STRATEGIES[field].filter(lambda v: v != cfg[field]),
        label="replacement value",
    )
    perturbed = {**cfg, field: value}
    assert run_key(topology=_TOPO_FP, **perturbed) != run_key(topology=_TOPO_FP, **cfg)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30)
def test_key_stable_across_topology_value_and_fingerprint(seed):
    topo = tiny_two_node()
    from repro.exp.cache import topology_fingerprint

    by_value = run_key(
        benchmark="cg", scheduler="ilan", seed=seed, timesteps=None, noise=None,
        topology=topo,
    )
    by_fp = run_key(
        benchmark="cg", scheduler="ilan", seed=seed, timesteps=None, noise=None,
        topology=topology_fingerprint(topo),
    )
    assert by_value == by_fp


# ----------------------------------------------------------------------
# save_results / load_results losslessness over every figure row type
# ----------------------------------------------------------------------
row_strategies = st.one_of(
    st.builds(
        SpeedupRow,
        benchmark=st.sampled_from(["ft", "cg", "sp"]),
        scheduler=st.sampled_from(["ilan", "ilan-nomold"]),
        baseline_mean=finite,
        baseline_std=finite,
        sched_mean=finite,
        sched_std=finite,
        speedup=finite,
    ),
    st.builds(
        ThreadsRow,
        benchmark=st.sampled_from(["ft", "cg"]),
        avg_threads=finite,
        max_threads=st.integers(min_value=1, max_value=1024),
    ),
    st.builds(
        OverheadRow,
        benchmark=st.sampled_from(["ft", "cg"]),
        baseline_overhead=finite,
        ilan_overhead=finite,
        normalized=finite,
    ),
    st.builds(
        VariabilityRow,
        benchmark=st.sampled_from(["ft", "cg"]),
        baseline_std=finite,
        ilan_std=finite,
        baseline_rel_std=finite,
        ilan_rel_std=finite,
    ),
)


@settings(max_examples=80, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(rows=st.lists(row_strategies, min_size=1, max_size=6))
def test_row_roundtrip_lossless(rows, tmp_path):
    """Every figure-row type survives save/load bit-exactly."""
    loaded = load_results(save_results(tmp_path / "rows.json", rows))
    assert loaded == rows
    for orig, back in zip(rows, loaded):
        assert type(back) is type(orig)
        for f in dataclasses.fields(orig):
            assert getattr(back, f.name) == getattr(orig, f.name)


# ----------------------------------------------------------------------
# encode_run / decode_run losslessness (NaN included)
# ----------------------------------------------------------------------
maybe_nan = st.floats(allow_nan=True, allow_infinity=False, width=64)


@st.composite
def app_runs(draw):
    n_loops = draw(st.integers(min_value=0, max_value=3))
    loops = []
    for i in range(n_loops):
        ledger = OverheadLedger()
        ledger.charge("dequeue", draw(positive), count=draw(st.integers(1, 50)))
        loops.append(
            TaskloopResult(
                uid=f"app.loop{i}",
                name=f"loop{i}",
                elapsed=draw(positive),
                num_threads=draw(st.integers(1, 64)),
                node_mask_bits=draw(st.integers(0, 2**8 - 1)),
                steal_policy=draw(st.sampled_from(["hier", "random", "none"])),
                overhead=ledger,
                node_perf=np.array(draw(st.lists(maybe_nan, min_size=1, max_size=4))),
                node_busy=np.array(draw(st.lists(finite, min_size=1, max_size=4))),
                tasks_executed=draw(st.integers(0, 10_000)),
                steals_local=draw(st.integers(0, 1000)),
                steals_remote=draw(st.integers(0, 1000)),
                counters=draw(
                    st.one_of(
                        st.none(),
                        st.builds(
                            TaskloopCounters,
                            uid=st.just(f"app.loop{i}"),
                            elapsed=finite,
                            sat_time_integral=finite,
                            peak_saturation=finite,
                            bytes_total=finite,
                            bytes_remote=finite,
                            busy_time=finite,
                            idle_time=finite,
                        ),
                    )
                ),
            )
        )
    return AppRunResult(
        app_name=draw(st.sampled_from(["cg", "sp", "matmul"])),
        scheduler=draw(st.sampled_from(["baseline", "ilan"])),
        seed=draw(st.integers(0, 2**32 - 1)),
        total_time=draw(finite),
        taskloops=loops,
    )


@settings(max_examples=60)
@given(run=app_runs())
def test_run_codec_roundtrip_lossless(run):
    decoded = decode_run(encode_run(run))
    assert run_to_json(decoded) == run_to_json(run)
    # and a second trip is a fixed point (NaN-safe comparison via canonical text)
    assert run_to_json(decode_run(encode_run(decoded))) == run_to_json(run)
