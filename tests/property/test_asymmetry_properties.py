"""Property-based tests for dynamic asymmetry and drift re-exploration.

Three contracts:

1. a (seed, asym-spec) pair fully determines a run — same-seed asymmetric
   runs are byte-identical, and the asymmetry seed is independent of the
   workload seed;
2. drift re-exploration triggers *iff* the relative deviation exceeds the
   threshold for ``drift_window`` consecutive settled encounters;
3. an invalidated PTT is re-learned from the new regime, never
   resurrected from the old one (the ``generation`` counter proves which).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moldability import MoldabilityController, Phase
from repro.core.ptt import TaskloopPTT
from repro.interference.timeline import ASYMMETRY_PRESETS
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import default_distances, tiny_two_node, zen4_9354
from repro.workloads.synthetic import make_synthetic


# ----------------------------------------------------------------------
# 1. same-seed asymmetric runs are byte-identical
# ----------------------------------------------------------------------
def _asym_run(preset, scheduler, seed, asym_seed, engine):
    app = make_synthetic(
        work_seconds=0.05,
        mem_frac=0.6,
        gamma=0.8,
        num_tasks=8,
        total_iters=32,
        region_mib=32,
        timesteps=2,
    )
    runtime = OpenMPRuntime(
        tiny_two_node(),
        scheduler,
        seed=seed,
        engine=engine,
        asym=ASYMMETRY_PRESETS[preset],
        asym_seed=asym_seed,
    )
    result = runtime.run_application(app)
    return result.total_time, tuple(tl.elapsed for tl in result.taskloops)


@settings(max_examples=15, deadline=None)
@given(
    preset=st.sampled_from(sorted(ASYMMETRY_PRESETS)),
    scheduler=st.sampled_from(["baseline", "ilan", "ilan-adaptive"]),
    seed=st.integers(min_value=0, max_value=1000),
    asym_seed=st.one_of(st.none(), st.integers(0, 50)),
    engine=st.sampled_from(["reference", "incremental"]),
)
def test_same_seed_asym_runs_byte_identical(preset, scheduler, seed, asym_seed, engine):
    a = _asym_run(preset, scheduler, seed, asym_seed, engine)
    b = _asym_run(preset, scheduler, seed, asym_seed, engine)
    assert a == b  # exact float equality, no tolerance


@settings(max_examples=10, deadline=None)
@given(
    preset=st.sampled_from(["dvfs", "offline"]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_asym_seed_decouples_timeline_from_workload(preset, seed):
    """Pinning asym_seed makes the timeline independent of the run seed:
    two different asym seeds under the same run seed give different runs
    (with overwhelming probability over the sampled space), while the same
    asym seed replays exactly."""
    a = _asym_run(preset, "baseline", seed, asym_seed=1, engine="reference")
    b = _asym_run(preset, "baseline", seed, asym_seed=1, engine="reference")
    assert a == b


# ----------------------------------------------------------------------
# 2. drift triggers iff threshold exceeded for drift_window encounters
# ----------------------------------------------------------------------
def _settled_controller(threshold, window):
    topo = zen4_9354()
    ctrl = MoldabilityController(
        topology=topo,
        distances=default_distances(topo),
        granularity=topo.cores_per_node,
        reexplore=True,
        drift_threshold=threshold,
        drift_window=window,
    )
    ptt = TaskloopPTT(num_nodes=topo.num_nodes)
    for _ in range(30):
        if ctrl.phase is Phase.SETTLED:
            break
        cfg = ctrl.next_config(ptt)
        recorded = ctrl.record_next
        if recorded:
            perf = np.full(topo.num_nodes, np.nan)
            for n in cfg.node_mask.indices():
                perf[n] = 1.0
            ptt.record(cfg.key, 2.0, perf)
        ctrl.observe(recorded)
        if ctrl.phase is Phase.TRIAL:
            ctrl.finish_trial(ptt)
    assert ctrl.phase is Phase.SETTLED
    key = ctrl.settled_config.key
    mean = ptt.mean_time(key)
    assert mean is not None
    return ctrl, ptt, key, mean


@settings(max_examples=25, deadline=None)
@given(
    threshold=st.floats(min_value=0.05, max_value=1.0),
    window=st.integers(min_value=1, max_value=4),
    # relative deviation of the drifted samples, kept away from the
    # threshold itself so float rounding can't flip the expected outcome
    deviation=st.floats(min_value=0.01, max_value=3.0),
    faster=st.booleans(),
)
def test_reexploration_triggers_iff_drift_exceeds_threshold(
    threshold, window, deviation, faster
):
    if abs(deviation - threshold) < 0.02:
        deviation = threshold + (0.05 if deviation >= threshold else -0.05)
        if deviation <= 0:
            return
    if faster and deviation >= 1.0:
        return  # a "faster" sample can deviate at most 100%
    ctrl, ptt, key, mean = _settled_controller(threshold, window)
    elapsed = mean * (1.0 - deviation) if faster else mean * (1.0 + deviation)
    should_trigger = deviation > threshold
    triggered = False
    for _ in range(window):
        triggered = ctrl.note_settled_time(ptt, key, elapsed)
        if triggered:
            break
    assert triggered == should_trigger
    if should_trigger:
        assert ctrl.phase is Phase.BOOTSTRAP
        assert ctrl.reexplorations == 1
        assert ptt.entries == {}
    else:
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.reexplorations == 0
        # in-band samples reset the consecutive-drift window
        ctrl.note_settled_time(ptt, key, mean)
        assert ctrl.drift_count == 0


# ----------------------------------------------------------------------
# 3. invalidated entries are re-learned, not resurrected
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    old_time=st.floats(min_value=0.5, max_value=4.0),
    ratio=st.floats(min_value=2.0, max_value=5.0),
)
def test_invalidated_entries_relearned_not_resurrected(old_time, ratio):
    """After recovery (or any regime change), the re-settled PTT contains
    only measurements of the new regime: the old mean is gone, the
    generation advanced exactly once per re-exploration."""
    topo = zen4_9354()
    ctrl = MoldabilityController(
        topology=topo,
        distances=default_distances(topo),
        granularity=topo.cores_per_node,
        reexplore=True,
        drift_threshold=0.3,
        drift_window=2,
    )
    ptt = TaskloopPTT(num_nodes=topo.num_nodes)

    def settle(time_value):
        for _ in range(30):
            if ctrl.phase is Phase.SETTLED:
                break
            cfg = ctrl.next_config(ptt)
            recorded = ctrl.record_next
            if recorded:
                ptt.record(cfg.key, time_value)
            ctrl.observe(recorded)
            if ctrl.phase is Phase.TRIAL:
                ctrl.finish_trial(ptt)
        assert ctrl.phase is Phase.SETTLED
        return ctrl.settled_config.key

    key = settle(old_time)
    assert ptt.generation == 0
    new_time = old_time * ratio
    # two consecutive drifted encounters -> invalidation
    assert not ctrl.note_settled_time(ptt, key, new_time)
    assert ctrl.note_settled_time(ptt, key, new_time)
    assert ptt.generation == 1
    assert ptt.entries == {}
    key2 = settle(new_time)
    assert ptt.generation == 1  # settling again does not invalidate
    mean2 = ptt.mean_time(key2)
    assert mean2 == pytest.approx(new_time)
    # every surviving entry was measured after the invalidation
    for stats in ptt.entries.values():
        assert stats.mean == pytest.approx(new_time)
