"""Property-based tests for taskloop partitioning and profile masses."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.runtime.taskloop import chunk_bounds, profile_mass


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=20_000),
    data=st.data(),
)
def test_chunk_bounds_partition_exactly(total, data):
    n = data.draw(st.integers(min_value=1, max_value=total))
    bounds = chunk_bounds(total, n)
    assert len(bounds) == n
    assert bounds[0][0] == 0
    assert bounds[-1][1] == total
    for (a, b), (c, d) in zip(bounds, bounds[1:]):
        assert b == c
    sizes = [hi - lo for lo, hi in bounds]
    assert max(sizes) - min(sizes) <= 1
    assert all(s >= 1 for s in sizes)


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=10_000),
    data=st.data(),
)
def test_chunk_sizes_monotone_nonincreasing(total, data):
    """LLVM gives the remainder to the first chunks."""
    n = data.draw(st.integers(min_value=1, max_value=total))
    sizes = [hi - lo for lo, hi in chunk_bounds(total, n)]
    assert sizes == sorted(sizes, reverse=True)


weights_strategy = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=128),
    elements=st.floats(min_value=0.001, max_value=100.0),
)


@settings(max_examples=50)
@given(weights=weights_strategy, cuts=st.integers(min_value=1, max_value=20))
def test_profile_mass_tiles_to_one(weights, cuts):
    w = weights / weights.sum()
    edges = np.linspace(0.0, 1.0, cuts + 1)
    total = sum(profile_mass(w, float(a), float(b)) for a, b in zip(edges, edges[1:]))
    assert abs(total - 1.0) < 1e-9


@settings(max_examples=50)
@given(
    weights=weights_strategy,
    lo=st.floats(min_value=0.0, max_value=0.99),
    span=st.floats(min_value=0.001, max_value=1.0),
)
def test_profile_mass_nonnegative_and_bounded(weights, lo, span):
    w = weights / weights.sum()
    hi = min(lo + span, 1.0)
    if hi <= lo:
        return
    m = profile_mass(w, lo, hi)
    assert 0.0 <= m <= 1.0 + 1e-9


@settings(max_examples=50)
@given(weights=weights_strategy, lo=st.floats(0.0, 0.5), mid=st.floats(0.5, 0.8), hi=st.floats(0.8, 1.0))
def test_profile_mass_additive(weights, lo, mid, hi):
    if not (lo < mid < hi):
        return
    w = weights / weights.sum()
    whole = profile_mass(w, lo, hi)
    parts = profile_mass(w, lo, mid) + profile_mass(w, mid, hi)
    assert abs(whole - parts) < 1e-9
