"""Property-based tests for the moldability controller's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StealPolicyMode
from repro.core.moldability import MoldabilityController, Phase
from repro.core.ptt import TaskloopPTT
from repro.topology.machine import MachineTopology
from repro.topology.presets import default_distances


def build_machine(nodes: int, cores_per_node: int) -> MachineTopology:
    return MachineTopology.build(
        num_sockets=1,
        nodes_per_socket=nodes,
        ccds_per_node=1,
        cores_per_ccd=cores_per_node,
    )


@st.composite
def machine_and_times(draw):
    nodes = draw(st.integers(min_value=1, max_value=8))
    cores = draw(st.integers(min_value=1, max_value=8))
    # an arbitrary positive time per thread count, drawn lazily
    time_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return nodes, cores, time_seed


@settings(max_examples=40, deadline=None)
@given(machine_and_times())
def test_every_configuration_is_well_formed(params):
    """Whatever the (deterministic) time landscape, every configuration
    the controller emits is legal: threads a positive multiple of g capped
    at the machine, mask sized to the thread count, strict policy during
    exploration, and the process settles within a bounded number of
    encounters."""
    nodes, cores, time_seed = params
    topo = build_machine(nodes, cores)
    g = cores  # node-size granularity, as in the paper
    ctrl = MoldabilityController(
        topology=topo, distances=default_distances(topo), granularity=g
    )
    ptt = TaskloopPTT(num_nodes=nodes)
    rng = np.random.default_rng(time_seed)
    times = {}

    def time_for(threads: int) -> float:
        if threads not in times:
            times[threads] = float(rng.uniform(0.5, 2.0))
        return times[threads]

    m_max = topo.num_cores
    encounters = 0
    while ctrl.phase is not Phase.SETTLED and encounters < 30:
        cfg = ctrl.next_config(ptt)
        encounters += 1
        assert 1 <= cfg.num_threads <= m_max
        assert cfg.num_threads % g == 0
        expected_nodes = -(-cfg.num_threads // cores)
        assert cfg.node_mask.count() == expected_nodes
        if ctrl.phase in (Phase.WARMUP, Phase.BOOTSTRAP, Phase.SEARCH, Phase.CONFIRM):
            assert cfg.steal_policy is StealPolicyMode.STRICT
        phase = ctrl.phase
        recorded = ctrl.record_next
        if recorded:
            perf = np.full(nodes, np.nan)
            for n in cfg.node_mask.indices():
                perf[n] = 1.0
            ptt.record(cfg.key, time_for(cfg.num_threads), perf)
        ctrl.observe(recorded)
        if phase is Phase.TRIAL:
            ctrl.finish_trial(ptt)

    assert ctrl.phase is Phase.SETTLED
    # bounded exploration: warmup + 2 bootstrap + log2 search + confirm + trial
    assert encounters <= 6 + int(np.log2(max(m_max // g, 1)))

    settled = ctrl.settled_config
    assert settled is not None
    # the settled width is the best among explored strict configurations
    per = ptt.best_time_per_thread_count(policy="strict")
    assert per[settled.num_threads] == min(per.values())


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
def test_settled_config_is_stable(nodes, cores):
    """After settling, next_config returns the identical configuration."""
    topo = build_machine(nodes, cores)
    ctrl = MoldabilityController(
        topology=topo, distances=default_distances(topo), granularity=cores
    )
    ptt = TaskloopPTT(num_nodes=nodes)
    for _ in range(30):
        if ctrl.phase is Phase.SETTLED:
            break
        cfg = ctrl.next_config(ptt)
        phase = ctrl.phase
        recorded = ctrl.record_next
        if recorded:
            ptt.record(cfg.key, 1.0 / cfg.num_threads, None)
        ctrl.observe(recorded)
        if phase is Phase.TRIAL:
            ctrl.finish_trial(ptt)
    assert ctrl.phase is Phase.SETTLED
    first = ctrl.next_config(ptt)
    for _ in range(3):
        assert ctrl.next_config(ptt) == first
