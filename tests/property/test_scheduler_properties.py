"""Property-based tests for scheduler invariants (Algorithm 1, distribution)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import distribute_chunks
from repro.core.selection import initial_threads, select_next_threads
from repro.runtime.task import Chunk, TaskloopWork
from repro.memory.access import AccessPattern
from repro.memory.allocator import MemoryMap


def make_chunks(n):
    mm = MemoryMap(num_nodes=8, page_bytes=1024)
    region = mm.allocate("r", 64 * 1024)
    work = TaskloopWork(
        uid="p.loop", name="loop", total_iters=max(n, 1), num_tasks=max(n, 1),
        work_seconds=1.0, mem_frac=0.5, weights=np.ones(16), region=region,
        pattern=AccessPattern.blocked(),
    )
    return [
        Chunk(work=work, index=i, lo=i, hi=i + 1, lo_frac=i / n, hi_frac=(i + 1) / n,
              body_time=0.001)
        for i in range(n)
    ]


@settings(max_examples=60)
@given(
    n_chunks=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_distribution_partitions_chunks(n_chunks, data):
    n_nodes = data.draw(st.integers(min_value=1, max_value=8))
    nodes = data.draw(
        st.lists(st.integers(0, 7), min_size=n_nodes, max_size=n_nodes, unique=True)
    )
    frac = data.draw(st.floats(min_value=0.0, max_value=1.0))
    chunks = make_chunks(n_chunks)
    per_node = distribute_chunks(chunks, nodes, strict_fraction=frac)
    # every chunk assigned exactly once
    assigned = [c for nc in per_node.values() for c in nc]
    assert sorted(c.index for c in assigned) == list(range(n_chunks))
    # near-even split
    sizes = [len(per_node[n]) for n in nodes]
    assert max(sizes) - min(sizes) <= 1
    # block contiguity: each node's indices are consecutive
    for nc in per_node.values():
        idx = [c.index for c in nc]
        assert idx == list(range(idx[0], idx[0] + len(idx))) if idx else True
    # strict fraction respected per node
    for nc in per_node.values():
        expected = int(frac * len(nc))
        assert sum(c.strict for c in nc) == expected


@settings(max_examples=80)
@given(
    g_exp=st.integers(min_value=0, max_value=3),
    m_exp=st.integers(min_value=0, max_value=4),
    opt_idx=st.integers(min_value=0, max_value=100),
)
def test_algorithm1_always_terminates_at_local_optimum(g_exp, m_exp, opt_idx):
    """For any unimodal time function, the search terminates in a bounded
    number of steps on a configuration, and always on the measured best."""
    g = 2**g_exp
    m_max = g * (2**m_exp)
    levels = list(range(g, m_max + 1, g))
    optimum = levels[opt_idx % len(levels)]

    def time_for(threads):
        return abs(threads - optimum) + 1.0

    per = {m_max: time_for(m_max)}
    second = initial_threads(2, m_max, g)
    finished = False
    if second == m_max:
        finished = True
        best = m_max
    else:
        per[second] = time_for(second)
        cur, k = second, 3
        for _ in range(32):
            sel = select_next_threads(per, cur, k, g)
            if sel.search_finished:
                finished = True
                best = sel.threads
                break
            cur = sel.threads
            per[cur] = time_for(cur)
            k += 1
    assert finished
    # the selected config must be the best among *explored* configs
    assert per[best] == min(per.values())
    # bounded exploration: at most ~log2 probes
    assert len(per) <= m_exp + 3
