"""Property-based tests for topology construction and the hwloc format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.distances import DistanceMatrix
from repro.topology.hwloc import format_topology, parse_topology
from repro.topology.machine import MachineTopology

shapes = st.tuples(
    st.integers(min_value=1, max_value=3),  # sockets
    st.integers(min_value=1, max_value=3),  # nodes/socket
    st.integers(min_value=1, max_value=2),  # ccds/node
    st.integers(min_value=1, max_value=4),  # cores/ccd
)


def build(shape) -> MachineTopology:
    s, n, c, k = shape
    return MachineTopology.build(
        num_sockets=s, nodes_per_socket=n, ccds_per_node=c, cores_per_ccd=k
    )


@settings(max_examples=40, deadline=None)
@given(shapes)
def test_build_invariants(shape):
    topo = build(shape)
    s, n, c, k = shape
    assert topo.num_cores == s * n * c * k
    assert topo.num_nodes == s * n
    assert topo.num_ccds == s * n * c
    # nodes partition cores
    seen = sorted(cid for node in topo.nodes for cid in node.core_ids)
    assert seen == list(range(topo.num_cores))
    # node/ccd/socket membership agree for every core
    for core in topo.cores:
        assert core.core_id in topo.nodes[core.node_id].core_ids
        assert core.core_id in topo.ccds[core.ccd_id].core_ids
        assert topo.nodes[core.node_id].socket_id == core.socket_id


@settings(max_examples=40, deadline=None)
@given(shapes)
def test_hwloc_roundtrip_any_shape(shape):
    topo = build(shape)
    text = format_topology(topo)
    parsed = parse_topology(text)
    assert format_topology(parsed) == text
    assert parsed.num_cores == topo.num_cores
    assert parsed.num_nodes == topo.num_nodes
    for a, b in zip(parsed.nodes, topo.nodes):
        assert a.core_ids == b.core_ids
        assert a.socket_id == b.socket_id


@settings(max_examples=40, deadline=None)
@given(
    shapes,
    st.integers(min_value=10, max_value=30),
    st.integers(min_value=0, max_value=30),
)
def test_distance_matrix_classes(shape, intra, extra):
    topo = build(shape)
    inter = intra + extra
    d = DistanceMatrix.from_topology(topo, intra_socket=intra, inter_socket=inter)
    for a in range(topo.num_nodes):
        order = d.nearest_nodes(a)
        assert order[0] == a
        # distances along the nearest-order are non-decreasing
        dists = [d.distance(a, b) for b in order]
        assert dists == sorted(dists)
        for b in range(topo.num_nodes):
            expected = (
                10 if a == b else (intra if topo.same_socket(a, b) else inter)
            )
            assert d.distance(a, b) == expected
