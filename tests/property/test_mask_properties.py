"""Property-based tests for bit masks (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.topology.affinity import BitMask

widths = st.integers(min_value=1, max_value=64)


@st.composite
def mask_and_width(draw):
    width = draw(widths)
    bits = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return BitMask(bits=bits, width=width), width


@given(mask_and_width())
def test_indices_roundtrip(mw):
    mask, width = mw
    assert BitMask.from_indices(mask.indices(), width) == mask


@given(mask_and_width())
def test_count_matches_indices(mw):
    mask, _ = mw
    assert mask.count() == len(mask.indices())


@given(mask_and_width(), mask_and_width())
def test_union_contains_both(a, b):
    ma, wa = a
    mb, wb = b
    if wa != wb:
        return
    u = ma.union(mb)
    assert set(u.indices()) == set(ma.indices()) | set(mb.indices())
    assert ma.is_subset(u) and mb.is_subset(u)


@given(mask_and_width(), mask_and_width())
def test_intersection_difference_partition(a, b):
    ma, wa = a
    mb, wb = b
    if wa != wb:
        return
    inter = ma.intersection(mb)
    diff = ma.difference(mb)
    assert inter.union(diff) == ma
    assert inter.intersection(diff).is_empty()


@given(mask_and_width())
def test_str_parses_back_to_same_count(mw):
    mask, _ = mw
    text = str(mask)
    if mask.is_empty():
        assert text == "{}"
    else:
        parts = text.strip("{}").split(",")
        total = 0
        for p in parts:
            if "-" in p:
                lo, hi = map(int, p.split("-"))
                total += hi - lo + 1
            else:
                total += 1
        assert total == mask.count()


@given(mask_and_width())
def test_first_is_minimum(mw):
    mask, _ = mw
    if not mask.is_empty():
        assert mask.first() == min(mask.indices())
