"""Property-based tests for the durability layer.

Two contracts, each quantified over adversarial inputs:

* **journal replay idempotence** — replaying any record stream twice
  (record-level, and the file-level analogue of re-opening a journal
  whose content was duplicated) yields the same state as replaying it
  once; transitions are monotone so arrival order never regresses a
  cell;
* **cache corruption detection** — flipping any single byte of a stored
  cache entry (or truncating it anywhere) is detected by the SHA-256
  content checksum and the entry is quarantined, never served.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.exp.cache import ResultCache, run_key, run_to_json
from repro.exp.journal import (
    CELL_COMMITTED,
    Journal,
    read_records,
    replay_state,
)
from tests.exp.test_cache import BASE_KEY_KWARGS, synthetic_run

# ----------------------------------------------------------------------
# journal replay idempotence
# ----------------------------------------------------------------------

_BENCHES = ("ft", "cg", "matmul")
_SCHEDS = ("baseline", "ilan")

cell_records = st.builds(
    lambda bench, sched, state, keys: {
        "type": "cell", "state": state, "benchmark": bench, "scheduler": sched,
        **({"keys": keys} if keys is not None else {}),
    },
    bench=st.sampled_from(_BENCHES),
    sched=st.sampled_from(_SCHEDS),
    state=st.sampled_from(("planned", "running", "committed")),
    keys=st.one_of(st.none(), st.lists(st.text("abcdef0123456789", min_size=1,
                                               max_size=8), max_size=3)),
)
checkpoint_records = st.builds(
    lambda reason: {"type": "checkpoint", "reason": reason},
    reason=st.sampled_from(("sigterm", "sigint", "complete")),
)
record_streams = st.lists(st.one_of(cell_records, checkpoint_records), max_size=30)


def canonical(state):
    return (state.header, dict(state.cells), dict(state.keys),
            list(state.checkpoints))


@given(records=record_streams)
def test_replaying_any_stream_twice_equals_once(records):
    once = replay_state(records)
    twice = replay_state(records + records)
    assert canonical(once) == canonical(twice)


@given(records=record_streams, cut=st.integers(min_value=0, max_value=30))
def test_replaying_a_prefix_then_the_whole_never_regresses(records, cut):
    """Any cell committed in a prefix stays committed in the full replay —
    the resume invariant: work acknowledged once is never redone."""
    prefix = records[: min(cut, len(records))]
    committed_early = replay_state(prefix).committed_cells()
    full = replay_state(records)
    assert committed_early <= full.committed_cells()
    for cell in committed_early:
        assert full.state_of(*cell) == CELL_COMMITTED


@given(records=record_streams)
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_file_level_duplication_replays_identically(records, tmp_path):
    """The on-disk analogue: a journal whose bytes were appended twice
    (e.g. a resumed writer replaying an already-written stream) folds to
    the same state as the single copy."""
    # tmp_path is shared across the examples of one @given run; the
    # journal appends, so every example needs a fresh directory
    workdir = Path(tempfile.mkdtemp(dir=tmp_path))
    path = workdir / "j.wal"
    with Journal(path, fsync=False) as j:
        for r in records:
            j.append(r)
    raw = path.read_bytes()
    (workdir / "doubled.wal").write_bytes(raw + raw)
    once = replay_state(read_records(path))
    twice = replay_state(read_records(workdir / "doubled.wal"))
    assert canonical(once) == canonical(twice)


# ----------------------------------------------------------------------
# cache corruption detection
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def entry_bytes(tmp_path_factory):
    """One stored cache entry's exact on-disk bytes (computed once)."""
    cache = ResultCache(tmp_path_factory.mktemp("seed-cache"), fsync=False)
    key = run_key(**BASE_KEY_KWARGS)
    cache.put(key, synthetic_run())
    return key, cache.path_for(key).read_bytes()


@given(offset=st.integers(min_value=0), flip=st.integers(min_value=1, max_value=255))
@example(offset=0, flip=1)      # first header byte
@example(offset=-1, flip=0x80)  # last payload byte (via modulo below)
@settings(max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_any_single_byte_flip_is_quarantined_never_served(
    entry_bytes, tmp_path, offset, flip
):
    key, raw = entry_bytes
    # tmp_path is shared across the examples of one @given run; every
    # example gets its own cache root so quarantine counts don't leak
    cache = ResultCache(tempfile.mkdtemp(dir=tmp_path), fsync=False)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    corrupted = bytearray(raw)
    corrupted[offset % len(raw)] ^= flip
    path.write_bytes(bytes(corrupted))

    assert cache.get(key) is None           # never served
    assert not path.exists()                # moved aside...
    assert len(cache.quarantined_files()) == 1  # ...into quarantine
    assert cache.stats.quarantined == 1

    # and the slot heals: an honest recompute round-trips
    run = synthetic_run()
    cache.put(key, run)
    got = cache.get(key)
    assert got is not None and run_to_json(got) == run_to_json(run)


@given(cut=st.integers(min_value=0))
@settings(max_examples=30,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_truncation_at_any_point_is_quarantined(entry_bytes, tmp_path, cut):
    key, raw = entry_bytes
    # tmp_path is shared across the examples of one @given run; every
    # example gets its own cache root so quarantine counts don't leak
    cache = ResultCache(tempfile.mkdtemp(dir=tmp_path), fsync=False)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(raw[: cut % len(raw)])  # strictly shorter than raw

    assert cache.get(key) is None
    assert len(cache.quarantined_files()) == 1


@given(junk=st.binary(min_size=0, max_size=200))
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_arbitrary_bytes_never_crash_the_reader(entry_bytes, tmp_path, junk):
    """`get` over any garbage is a quarantining miss, never an exception."""
    key, _ = entry_bytes
    cache = ResultCache(tempfile.mkdtemp(dir=tmp_path), fsync=False)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(junk)
    assert cache.get(key) is None
    assert not path.exists()
