"""Property-based tests for the self-healing federation.

Contracts under test, for *any* seeded join/leave/crash/respawn
sequence the strategies can draw:

* fleet-wide job conservation — ``submitted == completed + failed +
  active + queued + evicted`` — holds on every shard incarnation
  (the dead epoch-0 corpse and its respawn are separate entries);
* every submitted job reaches a terminal state through the router, and
  no unfinished job stays attributed to a dead incarnation;
* zero leaked leases on any incarnation after the drain;
* replaying the same drawn seeds yields a byte-identical canonical
  report — detection, migration and respawn are pure functions of the
  seeds and the logical clock.

Each example runs a real (small) federation to a drained fixed point,
so ``max_examples`` stays deliberately low.
"""

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp.runner import ExperimentConfig
from repro.serve.federation import (
    FederationRouter,
    Membership,
    ShardFaultPlan,
    ShardSupervisor,
    build_shard,
    build_shards,
    respawn_factory,
)
from repro.serve.protocol import JobRequest
from repro.topology.presets import dual_socket_small

seeds = st.integers(min_value=0, max_value=2**20)

# A drawn scenario: fleet size, workload, and the join/leave/crash plan.
scenarios = st.fixed_dictionaries(
    {
        "shards": st.integers(min_value=2, max_value=3),
        "jobs": st.integers(min_value=4, max_value=8),
        "tenants": st.integers(min_value=2, max_value=4),
        "kill_index": st.integers(min_value=0, max_value=2),
        "kill_point": st.integers(min_value=1, max_value=4),
        "join_at": st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        "leave": st.booleans(),
        "fault_seed": seeds,
        "ring_seed": seeds,
    }
)


def _config():
    return ExperimentConfig(
        seeds=1, timesteps=2, with_noise=False, jobs=1, cache_dir=None
    )


async def _run_scenario(params: dict) -> dict:
    """Drive one drawn join/leave/crash/respawn sequence to its fixed point.

    Returns a canonical wall-clock-free report of everything observable:
    plan decisions, membership events, per-incarnation job counters,
    final job states and lease maps.
    """
    config = _config()
    n = params["shards"]
    kill_shard = f"shard-{params['kill_index'] % n}"
    shards = build_shards(
        n, dual_socket_small, config=config,
        queue_capacity=max(params["jobs"], 16), workers=1,
    )
    plan = ShardFaultPlan(
        0.0, seed=params["fault_seed"],
        scheduled={kill_shard: params["kill_point"]},
    )
    membership = Membership(heartbeat_every=1, suspect_after=1,
                            confirm_after=2)
    supervisor = ShardSupervisor(
        respawn_factory(dual_socket_small, config=config,
                        queue_capacity=max(params["jobs"], 16), workers=1),
        max_respawns=1,
    )
    router = FederationRouter(shards, seed=params["ring_seed"],
                              shard_fault_plan=plan,
                              membership=membership, supervisor=supervisor)
    await router.start()

    # Leave a shard that is not the crash victim, and only from a fleet
    # big enough that the last-live-shard guards can never trip even if
    # the crash fires first.
    leave_shard = None
    if params["leave"] and n >= 3:
        candidates = [s for s in sorted(router.shards) if s != kill_shard]
        leave_shard = candidates[0]

    joined = False
    left = False
    for i in range(params["jobs"]):
        if (params["join_at"] is not None and not joined
                and router.placements >= params["join_at"]):
            joiner = build_shard(
                f"shard-{n}", dual_socket_small, config=config,
                queue_capacity=max(params["jobs"], 16), workers=1,
            )
            await router.join_shard(joiner)
            joined = True
        if (leave_shard is not None and not left
                and router.placements >= 2
                and router.shards[leave_shard].alive
                and len(router.live_shards) > 2):
            await router.leave_shard(leave_shard)
            left = True
        await router.submit(
            JobRequest(benchmark="matmul", timesteps=2, nodes=1,
                       tenant=f"tenant-{i % params['tenants']}")
        )
    snapshot = await router.drain()

    return {
        "params": dict(sorted(params.items())),
        "decisions": plan.decisions(),
        "crashed": list(plan.crashed),
        "dead": snapshot["fleet"]["dead"],
        "alive": snapshot["fleet"]["alive"],
        "membership": snapshot["membership"],
        "counters": {
            "placements": router.placements,
            "shard_deaths": router.shard_deaths,
            "requeued_jobs": router.requeued_jobs,
        },
        "job_states": snapshot["router"]["job_states"],
        "jobs": {
            fed_id: {
                "tenant": job["tenant"],
                "shard": job["shard"],
                "placements": job["placements"],
                "state": job["state"],
            }
            for fed_id, job in snapshot["jobs"].items()
        },
        "shard_jobs": {
            iid: {
                key: value
                for key, value in shard["jobs"].items()
                if key not in ("latency", "throughput_jps")  # wall-clock
            }
            for iid, shard in snapshot["shards"].items()
        },
        "leases": {
            iid: shard["nodes"]["leases"]
            for iid, shard in snapshot["shards"].items()
        },
    }


@settings(max_examples=8, deadline=None)
@given(params=scenarios)
def test_any_sequence_conserves_jobs_and_leases(params):
    report = asyncio.run(_run_scenario(params))

    # Conservation per incarnation, dead corpses included.
    for iid, jobs in report["shard_jobs"].items():
        assert jobs["submitted"] == (
            jobs["completed"] + jobs["failed"] + jobs["active"]
            + jobs["queued"] + jobs["evicted"]
        ), (iid, jobs)

    # Every job terminal through the router; nothing in flight.
    states = report["job_states"]
    assert states["completed"] + states["failed"] == params["jobs"], states
    assert states["queued"] == 0 and states["running"] == 0, states

    # A job that finished on the victim before the silent crash may stay
    # attributed to the dead incarnation — unfinished work never does.
    stranded = [
        fed_id for fed_id, job in report["jobs"].items()
        if job["shard"] in report["dead"]
        and job["state"] not in ("completed", "failed")
    ]
    assert not stranded, stranded

    # No lease survives the drain on any incarnation, dead or alive.
    leaked = [
        (iid, node)
        for iid, leases in report["leases"].items()
        for node, owner in leases.items()
        if owner is not None
    ]
    assert not leaked, leaked


@settings(max_examples=8, deadline=None)
@given(params=scenarios)
def test_confirmed_deaths_always_respawn_within_budget(params):
    report = asyncio.run(_run_scenario(params))
    membership = report["membership"]

    # Detection is complete: by the end of the drain no live-looking
    # member backs a dead handle, so confirmed deaths == actual deaths.
    assert membership["deaths_confirmed"] == report["counters"]["shard_deaths"]

    if report["crashed"]:
        respawns = membership["respawns"] or {}
        assert respawns.get("respawns_total", 0) == len(report["crashed"])
        for shard_id in report["crashed"]:
            # The respawned incarnation rejoined at epoch 1 and is live.
            assert membership["epochs"].get(shard_id) == 1, membership["epochs"]
            assert shard_id in report["alive"], report["alive"]
            assert shard_id in report["dead"], report["dead"]

    # Warm migrations and drops partition the displaced tenants: every
    # migration-log entry is one or the other, never both, never silent.
    log = membership["migration_log"]
    completed = [e for e in log if e["to"] is not None]
    dropped = [e for e in log if e["to"] is None]
    assert len(completed) == membership["migrations_completed"]
    assert len(dropped) == membership["migrations_dropped"]


@settings(max_examples=4, deadline=None)
@given(params=scenarios)
def test_same_seed_replay_is_byte_identical(params):
    first = asyncio.run(_run_scenario(params))
    second = asyncio.run(_run_scenario(params))
    a = json.dumps(first, sort_keys=True).encode()
    b = json.dumps(second, sort_keys=True).encode()
    assert a == b, "same drawn scenario diverged across replays"
