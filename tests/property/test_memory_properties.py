"""Property-based tests for the memory model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.access import AccessPattern, chunk_access
from repro.memory.allocator import MemoryMap
from repro.memory.bandwidth import contention_slowdown, node_demand
from repro.memory.pages import PageState


@settings(max_examples=60)
@given(
    num_pages=st.integers(min_value=1, max_value=128),
    num_nodes=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 127), st.integers(0, 127), st.integers(0, 7)),
        max_size=20,
    ),
)
def test_page_state_counts_stay_consistent(num_pages, num_nodes, ops):
    """Cached histograms must always equal recomputed ones."""
    ps = PageState(num_pages, num_nodes)
    for kind, a, b, node in ops:
        lo, hi = sorted((a % num_pages, b % num_pages))
        hi += 1
        node = node % num_nodes
        if kind == 0:
            ps.first_touch(lo, hi, node)
        elif kind == 1:
            ps.bind(lo, hi, node)
        else:
            ps.record_touch(lo, hi, node)
    homes = ps.home[ps.home >= 0]
    expected_home = np.bincount(homes, minlength=num_nodes)
    assert np.array_equal(ps.home_counts(), expected_home)
    lasts = ps.last[ps.last >= 0]
    expected_last = np.bincount(lasts, minlength=num_nodes)
    if lasts.size:
        w = ps.region_last_weights()
        assert np.allclose(w, expected_last / expected_last.sum())


@settings(max_examples=60)
@given(
    alpha=st.floats(min_value=0.0, max_value=1.0),
    lo=st.floats(min_value=0.0, max_value=0.9),
    span=st.floats(min_value=0.01, max_value=0.5),
    exec_node=st.integers(min_value=0, max_value=3),
    prep=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 3)), max_size=10),
)
def test_chunk_access_weights_are_distribution(alpha, lo, span, exec_node, prep):
    mm = MemoryMap(num_nodes=4, page_bytes=1024)
    region = mm.allocate("r", 64 * 1024, min_pages=1)
    for page, node in prep:
        region.pages.first_touch(page, page + 1, node)
    hi = min(lo + span, 1.0)
    acc = chunk_access(region, AccessPattern.strided(alpha), lo, hi, exec_node)
    assert np.all(acc.node_weights >= -1e-12)
    assert acc.node_weights.sum() == np.float64(1.0) or abs(acc.node_weights.sum() - 1.0) < 1e-9
    assert 0.0 <= acc.reuse_fraction <= 1.0 + 1e-9


@settings(max_examples=60)
@given(
    n_tasks=st.integers(min_value=1, max_value=32),
    n_nodes=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_node_demand_conserves_bandwidth(n_tasks, n_nodes, data):
    """Total demand equals sum of per-task demands (no bytes invented)."""
    raw = data.draw(
        st.lists(
            st.lists(st.floats(0.0, 1.0), min_size=n_nodes, max_size=n_nodes),
            min_size=n_tasks,
            max_size=n_tasks,
        )
    )
    w = np.array(raw)
    sums = w.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    w = w / sums
    mem = data.draw(
        st.lists(st.floats(0.0, 1.0), min_size=n_tasks, max_size=n_tasks)
    )
    mem = np.array(mem)
    d = node_demand(w, mem, core_bandwidth=10.0)
    assert d.shape == (n_nodes,)
    assert np.all(d >= 0)
    row_nonzero = w.sum(axis=1) > 0
    expected_total = 10.0 * mem[row_nonzero].sum()
    assert abs(d.sum() - expected_total) < 1e-6 * max(1.0, expected_total)


@settings(max_examples=60)
@given(
    demand=st.floats(min_value=0.0, max_value=1000.0),
    capacity=st.floats(min_value=0.1, max_value=100.0),
    gamma=st.floats(min_value=0.0, max_value=3.0),
)
def test_contention_slowdown_bounds(demand, capacity, gamma):
    s = contention_slowdown(np.array([demand]), np.array([capacity]), gamma)[0]
    assert s >= 1.0
    if demand <= capacity:
        assert s == 1.0
    # monotone in gamma when saturated
    if demand > capacity:
        s2 = contention_slowdown(np.array([demand]), np.array([capacity]), gamma + 0.5)[0]
        assert s2 >= s
