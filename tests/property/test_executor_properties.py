"""Property-based tests for the executor: conservation and determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.schedulers import create_scheduler
from repro.topology.presets import tiny_two_node
from tests.conftest import make_work


@st.composite
def workload_params(draw):
    return dict(
        num_tasks=draw(st.integers(min_value=1, max_value=24)),
        mem_frac=draw(st.floats(min_value=0.0, max_value=1.0)),
        reuse=draw(st.floats(min_value=0.0, max_value=1.0)),
        gamma=draw(st.floats(min_value=0.0, max_value=2.0)),
        seed=draw(st.integers(min_value=0, max_value=100)),
        scheduler=draw(st.sampled_from(["baseline", "ilan", "ilan-nomold", "worksharing"])),
    )


@settings(max_examples=40, deadline=None)
@given(workload_params())
def test_executor_conserves_work(params):
    """Whatever the scheduler and workload character: every chunk executes
    exactly once, elapsed time is positive and at least the critical path
    of the work, and per-node busy time sums to total busy time."""
    topo = tiny_two_node()
    ctx = RunContext.create(topo, seed=params["seed"])
    work = make_work(
        ctx,
        num_tasks=params["num_tasks"],
        total_iters=max(params["num_tasks"], 48),
        mem_frac=params["mem_frac"],
        reuse=params["reuse"],
        gamma=params["gamma"],
        work_seconds=0.004,
    )
    sched = create_scheduler(params["scheduler"])
    sched.reset()
    plan = sched.plan(work, ctx)
    result = TaskloopExecutor(ctx).run(work, plan)

    expected_tasks = plan.total_chunks
    assert result.tasks_executed == expected_tasks
    # no queue may still hold work afterwards
    assert result.elapsed > 0
    # the run cannot beat the perfectly-parallel lower bound
    lower = 0.004 * (1.0 - params["mem_frac"] * params["reuse"]) / topo.num_cores
    assert result.elapsed > lower * 0.99
    # work accounting: completed base work equals per-node sums
    total_done = ctx.states.work_done.sum()
    node_busy_sum = result.node_busy[~np.isnan(result.node_busy)].sum()
    assert node_busy_sum <= ctx.states.busy_time.sum() + 1e-12
    assert total_done > 0


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=50),
    st.sampled_from(["baseline", "ilan"]),
)
def test_executor_bitwise_deterministic(seed, scheduler):
    topo = tiny_two_node()
    elapsed = []
    for _ in range(2):
        ctx = RunContext.create(topo, seed=seed)
        work = make_work(ctx, num_tasks=12, total_iters=48, mem_frac=0.6, gamma=0.5)
        sched = create_scheduler(scheduler)
        plan = sched.plan(work, ctx)
        elapsed.append(TaskloopExecutor(ctx).run(work, plan).elapsed)
    assert elapsed[0] == elapsed[1]
