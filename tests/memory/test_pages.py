"""Unit tests for page-level home/last-touch state."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.pages import UNTOUCHED, PageState


@pytest.fixture
def ps():
    return PageState(num_pages=16, num_nodes=4)


class TestFirstTouch:
    def test_homes_untouched_pages(self, ps):
        homed = ps.first_touch(0, 4, node=1)
        assert homed == 4
        assert np.all(ps.home[0:4] == 1)

    def test_does_not_rehome(self, ps):
        ps.first_touch(0, 4, node=1)
        homed = ps.first_touch(0, 4, node=2)
        assert homed == 0
        assert np.all(ps.home[0:4] == 1)

    def test_partial_overlap(self, ps):
        ps.first_touch(0, 4, node=0)
        homed = ps.first_touch(2, 6, node=3)
        assert homed == 2
        assert list(ps.home[0:6]) == [0, 0, 0, 0, 3, 3]

    def test_updates_last_touch(self, ps):
        ps.first_touch(0, 4, node=1)
        assert np.all(ps.last[0:4] == 1)

    def test_home_counts_cache(self, ps):
        ps.first_touch(0, 4, node=1)
        ps.first_touch(4, 6, node=2)
        counts = ps.home_counts()
        assert counts[1] == 4 and counts[2] == 2 and counts.sum() == 6


class TestBindInterleave:
    def test_bind_overrides(self, ps):
        ps.first_touch(0, 8, node=0)
        ps.bind(0, 8, node=3)
        assert np.all(ps.home[0:8] == 3)
        assert ps.home_counts()[3] == 8
        assert ps.home_counts()[0] == 0

    def test_interleave_round_robin(self, ps):
        ps.interleave(0, 8, nodes=[0, 1])
        assert list(ps.home[0:8]) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_interleave_empty_nodes_rejected(self, ps):
        with pytest.raises(MemoryModelError):
            ps.interleave(0, 8, nodes=[])

    def test_interleave_counts(self, ps):
        ps.interleave(0, 6, nodes=[2, 3])
        assert ps.home_counts()[2] == 3 and ps.home_counts()[3] == 3


class TestTouch:
    def test_record_touch_updates_last(self, ps):
        ps.record_touch(0, 4, node=2)
        assert np.all(ps.last[0:4] == 2)
        assert ps.last[5] == UNTOUCHED

    def test_last_touch_fraction(self, ps):
        ps.record_touch(0, 2, node=1)
        ps.record_touch(2, 4, node=0)
        assert ps.last_touch_fraction(0, 4, 1) == 0.5
        assert ps.last_touch_fraction(0, 4, 3) == 0.0

    def test_last_counts_consistent_after_overwrites(self, ps):
        ps.record_touch(0, 8, node=0)
        ps.record_touch(4, 12, node=1)
        w = ps.region_last_weights()
        assert w[0] == pytest.approx(4 / 12)
        assert w[1] == pytest.approx(8 / 12)


class TestQueries:
    def test_home_histogram(self, ps):
        ps.first_touch(0, 4, node=1)
        counts, untouched = ps.home_histogram(0, 8)
        assert counts[1] == 4
        assert untouched == 4

    def test_region_home_weights_empty(self, ps):
        assert np.all(ps.region_home_weights() == 0)
        assert ps.untouched_fraction() == 1.0

    def test_region_home_weights(self, ps):
        ps.first_touch(0, 8, node=0)
        ps.first_touch(8, 16, node=1)
        w = ps.region_home_weights()
        assert w[0] == pytest.approx(0.5)
        assert ps.untouched_fraction() == 0.0

    def test_bad_ranges(self, ps):
        for bad in [(-1, 2), (2, 2), (0, 17)]:
            with pytest.raises(MemoryModelError):
                ps.home_histogram(*bad)

    def test_bad_node(self, ps):
        with pytest.raises(MemoryModelError):
            ps.first_touch(0, 2, node=4)

    def test_bad_constructor(self):
        with pytest.raises(MemoryModelError):
            PageState(0, 4)
        with pytest.raises(MemoryModelError):
            PageState(4, 0)
        with pytest.raises(MemoryModelError):
            PageState(4, 4, page_bytes=0)
