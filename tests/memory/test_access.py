"""Unit tests for access-pattern resolution (chunk -> node weights)."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.access import AccessPattern, chunk_access
from repro.memory.allocator import MemoryMap


@pytest.fixture
def region():
    mm = MemoryMap(num_nodes=4, page_bytes=1024)
    return mm.allocate("r", 64 * 1024, min_pages=1)  # 64 pages


class TestAccessPattern:
    def test_constructors(self):
        assert AccessPattern.blocked().is_blocked
        assert AccessPattern.uniform().is_uniform
        assert AccessPattern.strided(0.5).blocked_fraction == 0.5

    def test_bad_fraction(self):
        with pytest.raises(MemoryModelError):
            AccessPattern(blocked_fraction=1.5)
        with pytest.raises(MemoryModelError):
            AccessPattern(blocked_fraction=-0.1)


class TestBlocked:
    def test_untouched_counts_as_local(self, region):
        acc = chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, exec_node=2)
        assert acc.node_weights[2] == pytest.approx(1.0)
        assert acc.node_weights.sum() == pytest.approx(1.0)
        assert acc.reuse_fraction == 0.0

    def test_commit_homes_and_touches(self, region):
        acc = chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, exec_node=2)
        acc.commit()
        assert np.all(region.pages.home[0:16] == 2)
        assert np.all(region.pages.last[0:16] == 2)

    def test_rerun_same_node_full_locality_and_reuse(self, region):
        chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, 2).commit()
        acc = chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, 2)
        assert acc.node_weights[2] == pytest.approx(1.0)
        assert acc.reuse_fraction == pytest.approx(1.0)

    def test_rerun_other_node_sees_remote_homes(self, region):
        chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, 2).commit()
        acc = chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, 0)
        assert acc.node_weights[2] == pytest.approx(1.0)  # homes stay on 2
        assert acc.node_weights[0] == pytest.approx(0.0)
        assert acc.reuse_fraction == 0.0

    def test_disjoint_chunks_do_not_interact(self, region):
        chunk_access(region, AccessPattern.blocked(), 0.0, 0.5, 1).commit()
        acc = chunk_access(region, AccessPattern.blocked(), 0.5, 1.0, 3)
        assert acc.node_weights[3] == pytest.approx(1.0)


class TestUniform:
    def test_cold_region_all_local(self, region):
        acc = chunk_access(region, AccessPattern.uniform(), 0.0, 0.25, 1)
        assert acc.node_weights[1] == pytest.approx(1.0)

    def test_weights_follow_home_distribution(self, region):
        region.pages.interleave(0, 64, nodes=[0, 1])
        acc = chunk_access(region, AccessPattern.uniform(), 0.0, 0.25, 3)
        assert acc.node_weights[0] == pytest.approx(0.5)
        assert acc.node_weights[1] == pytest.approx(0.5)
        assert acc.node_weights[3] == pytest.approx(0.0)

    def test_reuse_from_region_last_share(self, region):
        region.pages.interleave(0, 64, nodes=[0])
        region.blend_last_share(1, 0.6)
        acc = chunk_access(region, AccessPattern.uniform(), 0.0, 0.25, 1)
        assert acc.reuse_fraction == pytest.approx(0.6)

    def test_commit_first_touches_scattered_pages(self, region):
        acc = chunk_access(region, AccessPattern.uniform(), 0.0, 0.25, 1)
        acc.commit()
        homed = (region.pages.home == 1).sum()
        assert homed >= 14  # ~16 pages (a quarter of 64)
        assert region.last_share[1] > 0

    def test_commit_with_everything_homed_is_noop_on_homes(self, region):
        region.pages.interleave(0, 64, nodes=[0])
        before = region.pages.home_counts()
        chunk_access(region, AccessPattern.uniform(), 0.0, 0.5, 2).commit()
        assert np.array_equal(region.pages.home_counts(), before)


class TestStrided:
    def test_mixture_weights(self, region):
        region.pages.interleave(0, 64, nodes=[0])  # all homes on node 0
        acc = chunk_access(region, AccessPattern.strided(0.5), 0.0, 0.25, 1)
        # blocked half: pages homed on 0 -> weight 0.5 to node 0
        # uniform half: all homes on 0 -> weight 0.5 to node 0
        assert acc.node_weights[0] == pytest.approx(1.0)

    def test_mixture_reuse_combines(self, region):
        chunk_access(region, AccessPattern.blocked(), 0.0, 0.25, 1).commit()
        region.blend_last_share(1, 1.0)
        acc = chunk_access(region, AccessPattern.strided(0.5), 0.0, 0.25, 1)
        assert acc.reuse_fraction == pytest.approx(1.0)

    def test_weights_always_normalised(self, region):
        region.pages.interleave(0, 32, nodes=[0, 1, 2])
        for alpha in (0.0, 0.3, 0.7, 1.0):
            acc = chunk_access(region, AccessPattern.strided(alpha), 0.1, 0.6, 2)
            assert acc.node_weights.sum() == pytest.approx(1.0)


class TestValidation:
    def test_bad_span(self, region):
        with pytest.raises(MemoryModelError):
            chunk_access(region, AccessPattern.blocked(), 0.5, 0.5, 0)

    def test_bad_node(self, region):
        with pytest.raises(MemoryModelError):
            chunk_access(region, AccessPattern.blocked(), 0.0, 0.5, 7)
