"""Unit tests for the cache-reuse model."""

import pytest

from repro.errors import MemoryModelError
from repro.memory.cache import CacheModel
from repro.topology.machine import MIB


@pytest.fixture
def cache(zen4):
    return CacheModel.from_topology(zen4)


class TestFromTopology:
    def test_zen4_node_l3(self, cache):
        # 2 CCDs x 32 MB per node
        assert cache.num_nodes == 8
        assert all(b == 64 * MIB for b in cache.node_l3_bytes)

    def test_tiny(self, tiny):
        c = CacheModel.from_topology(tiny)
        assert c.num_nodes == 2


class TestCapacity:
    def test_fits_entirely(self, cache):
        assert cache.capacity_factor(0, 16 * MIB) == 1.0

    def test_partial_fit(self, cache):
        assert cache.capacity_factor(0, 128 * MIB) == pytest.approx(0.5)

    def test_zero_working_set(self, cache):
        assert cache.capacity_factor(0, 0) == 1.0

    def test_validation(self, cache):
        with pytest.raises(MemoryModelError):
            cache.capacity_factor(9, 1.0)
        with pytest.raises(MemoryModelError):
            cache.capacity_factor(0, -1.0)


class TestEffectiveReuse:
    def test_full_locality_full_reuse(self, cache):
        r = cache.effective_reuse(0, 0.5, 1.0, 1 * MIB)
        assert r == pytest.approx(0.5)

    def test_scales_with_locality(self, cache):
        r = cache.effective_reuse(0, 0.5, 0.4, 1 * MIB)
        assert r == pytest.approx(0.2)

    def test_capacity_discount(self, cache):
        r = cache.effective_reuse(0, 0.8, 1.0, 128 * MIB)
        assert r == pytest.approx(0.4)

    def test_bounds_validation(self, cache):
        with pytest.raises(MemoryModelError):
            cache.effective_reuse(0, 1.5, 1.0, 1.0)
        with pytest.raises(MemoryModelError):
            cache.effective_reuse(0, 0.5, 1.5, 1.0)

    def test_effective_bytes(self, cache):
        b = cache.effective_bytes(0, 100.0, 0.5, 1.0, 1 * MIB)
        assert b == pytest.approx(50.0)

    def test_effective_bytes_defaults_working_set(self, cache):
        # working set defaults to num_bytes itself
        b = cache.effective_bytes(0, float(128 * MIB), 0.8, 1.0)
        assert b == pytest.approx(128 * MIB * (1 - 0.4))
