"""Unit tests for the bandwidth-contention model."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.bandwidth import BandwidthModel, contention_slowdown, node_demand
from repro.topology.machine import GIB


class TestBandwidthModel:
    def test_from_topology(self, zen4):
        bw = BandwidthModel.from_topology(zen4)
        assert bw.num_nodes == 8
        assert np.all(bw.node_bandwidth == 40.0 * GIB)

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            BandwidthModel(node_bandwidth=np.array([]))
        with pytest.raises(MemoryModelError):
            BandwidthModel(node_bandwidth=np.array([-1.0]))
        with pytest.raises(MemoryModelError):
            BandwidthModel(node_bandwidth=np.array([1.0]), core_bandwidth=0.0)

    def test_frozen_vector(self, zen4):
        bw = BandwidthModel.from_topology(zen4)
        with pytest.raises(ValueError):
            bw.node_bandwidth[0] = 1.0


class TestNodeDemand:
    def test_single_task(self):
        w = np.array([[1.0, 0.0]])
        d = node_demand(w, np.array([0.5]), core_bandwidth=10.0)
        assert d[0] == pytest.approx(5.0)
        assert d[1] == 0.0

    def test_aggregates_tasks(self):
        w = np.array([[1.0, 0.0], [0.5, 0.5]])
        d = node_demand(w, np.array([1.0, 1.0]), core_bandwidth=10.0)
        assert d[0] == pytest.approx(15.0)
        assert d[1] == pytest.approx(5.0)

    def test_zero_mem_tasks_demand_nothing(self):
        w = np.array([[1.0, 0.0]])
        d = node_demand(w, np.array([0.0]), core_bandwidth=10.0)
        assert np.all(d == 0)

    def test_shape_validation(self):
        with pytest.raises(MemoryModelError):
            node_demand(np.ones(3), np.ones(3), 1.0)
        with pytest.raises(MemoryModelError):
            node_demand(np.ones((2, 3)), np.ones(3), 1.0)


class TestContentionSlowdown:
    def test_below_saturation_no_penalty(self):
        s = contention_slowdown(np.array([5.0]), np.array([10.0]))
        assert s[0] == 1.0

    def test_fair_sharing_gamma_zero(self):
        s = contention_slowdown(np.array([20.0]), np.array([10.0]), gamma=0.0)
        assert s[0] == pytest.approx(2.0)

    def test_superlinear_penalty(self):
        s0 = contention_slowdown(np.array([20.0]), np.array([10.0]), gamma=0.0)
        s1 = contention_slowdown(np.array([20.0]), np.array([10.0]), gamma=1.0)
        assert s1[0] == pytest.approx(4.0)
        assert s1[0] > s0[0]

    def test_per_node_gamma(self):
        s = contention_slowdown(
            np.array([20.0, 20.0]), np.array([10.0, 10.0]), gamma=np.array([0.0, 1.0])
        )
        assert s[0] == pytest.approx(2.0)
        assert s[1] == pytest.approx(4.0)

    def test_monotone_in_demand(self):
        demands = [np.array([x]) for x in (10.0, 15.0, 30.0, 60.0)]
        values = [contention_slowdown(d, np.array([10.0]), gamma=0.5)[0] for d in demands]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            contention_slowdown(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(MemoryModelError):
            contention_slowdown(np.array([1.0]), np.array([1.0]), gamma=-0.5)
