"""Unit tests for data regions and allocation policies."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.allocator import AllocPolicy, MemoryMap
from repro.memory.pages import UNTOUCHED


@pytest.fixture
def mm():
    return MemoryMap(num_nodes=4, page_bytes=1024)


class TestAllocate:
    def test_first_touch_starts_untouched(self, mm):
        r = mm.allocate("a", 8 * 1024)
        assert r.policy is AllocPolicy.FIRST_TOUCH
        assert np.all(r.pages.home == UNTOUCHED)

    def test_page_count_rounds_up(self, mm):
        r = mm.allocate("a", 8 * 1024 + 1, min_pages=1)
        assert r.num_pages == 9

    def test_min_pages_floor(self, mm):
        r = mm.allocate("a", 100)
        assert r.num_pages == 8

    def test_interleave_spreads(self, mm):
        r = mm.allocate("a", 16 * 1024, policy=AllocPolicy.INTERLEAVE, min_pages=1)
        w = r.pages.region_home_weights()
        assert np.allclose(w, 0.25)

    def test_interleave_subset(self, mm):
        r = mm.allocate("a", 16 * 1024, policy=AllocPolicy.INTERLEAVE, nodes=[1, 3], min_pages=1)
        w = r.pages.region_home_weights()
        assert w[0] == 0 and w[2] == 0
        assert w[1] == pytest.approx(0.5)

    def test_bind_single_node(self, mm):
        r = mm.allocate("a", 4 * 1024, policy=AllocPolicy.BIND, nodes=[2], min_pages=1)
        assert np.all(r.pages.home == 2)

    def test_bind_requires_one_node(self, mm):
        with pytest.raises(MemoryModelError):
            mm.allocate("a", 4 * 1024, policy=AllocPolicy.BIND, nodes=[1, 2])

    def test_first_touch_rejects_nodes(self, mm):
        with pytest.raises(MemoryModelError):
            mm.allocate("a", 1024, nodes=[0])

    def test_duplicate_name_rejected(self, mm):
        mm.allocate("a", 1024)
        with pytest.raises(MemoryModelError):
            mm.allocate("a", 1024)

    def test_bad_size_rejected(self, mm):
        with pytest.raises(MemoryModelError):
            mm.allocate("a", 0)


class TestMemoryMap:
    def test_region_lookup(self, mm):
        r = mm.allocate("x", 1024)
        assert mm.region("x") is r
        assert "x" in mm
        assert "y" not in mm

    def test_unknown_region(self, mm):
        with pytest.raises(MemoryModelError):
            mm.region("nope")

    def test_iteration_and_totals(self, mm):
        mm.allocate("a", 1000)
        mm.allocate("b", 2000)
        assert len(mm) == 2
        assert mm.total_bytes() == 3000
        assert {r.name for r in mm} == {"a", "b"}

    def test_bad_num_nodes(self):
        with pytest.raises(MemoryModelError):
            MemoryMap(0)


class TestRegion:
    def test_page_span_tiles_without_gaps(self, mm):
        r = mm.allocate("a", 64 * 1024, min_pages=1)  # 64 pages
        spans = [r.page_span(i / 7, (i + 1) / 7) for i in range(7)]
        assert spans[0][0] == 0
        assert spans[-1][1] == 64
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b >= c  # no gaps (thin spans may share a boundary page)

    def test_page_span_never_empty(self, mm):
        r = mm.allocate("a", 8 * 1024, min_pages=1)
        lo, hi = r.page_span(0.999, 1.0)
        assert hi > lo

    def test_page_span_bad_args(self, mm):
        r = mm.allocate("a", 8 * 1024)
        with pytest.raises(MemoryModelError):
            r.page_span(0.5, 0.5)
        with pytest.raises(MemoryModelError):
            r.page_span(-0.1, 0.5)

    def test_blend_last_share(self, mm):
        r = mm.allocate("a", 8 * 1024)
        r.blend_last_share(1, 0.5)
        assert r.last_share[1] == pytest.approx(0.5)
        r.blend_last_share(2, 0.5)
        assert r.last_share[1] == pytest.approx(0.25)
        assert r.last_share[2] == pytest.approx(0.5)
        assert r.last_share.sum() <= 1.0 + 1e-9

    def test_blend_bad_node(self, mm):
        r = mm.allocate("a", 8 * 1024)
        with pytest.raises(MemoryModelError):
            r.blend_last_share(9, 0.5)
