"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.core.moldability import Phase
from repro.core.scheduler import IlanScheduler
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import dual_socket_small, zen4_9354
from repro.workloads.registry import make_benchmark
from repro.workloads.synthetic import make_mixed, make_synthetic


class TestWorkConservation:
    """Every scheduler must execute exactly the same task set."""

    def test_task_counts_equal_across_schedulers(self, small):
        app = make_synthetic(timesteps=3, num_tasks=32, total_iters=128, region_mib=64)
        counts = {}
        for sched in ("baseline", "ilan", "ilan-nomold"):
            result = OpenMPRuntime(small, scheduler=sched, seed=0).run_application(app)
            counts[sched] = sum(r.tasks_executed for r in result.taskloops)
        assert len(set(counts.values())) == 1

    def test_clock_equals_sum_of_parts(self, small):
        app = make_synthetic(timesteps=3, num_tasks=16, total_iters=64, region_mib=32)
        app.serial_seconds = 0.01
        result = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(app)
        loops = sum(r.elapsed for r in result.taskloops)
        serial = 0.01 * 3
        assert result.total_time == pytest.approx(loops + serial, rel=1e-9)


class TestIlanOnRealisticWorkloads:
    def test_ilan_settles_on_zen4_cg(self):
        """On the paper platform, CG's spmv must settle below full width."""
        topo = zen4_9354()
        app = make_benchmark("cg", timesteps=14)
        sched = IlanScheduler()
        rt = OpenMPRuntime(topo, scheduler=sched, seed=0)
        result = rt.run_application(app)
        ctrl = sched.controller("cg.spmv")
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.settled_config.num_threads < 64
        assert result.weighted_avg_threads < 60

    def test_ilan_keeps_full_width_on_matmul(self):
        topo = zen4_9354()
        app = make_benchmark("matmul", timesteps=12)
        sched = IlanScheduler()
        OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
        ctrl = sched.controller("matmul.tile_gemm")
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.settled_config.num_threads == 64

    def test_mixed_app_gets_per_loop_configs(self):
        """The compute loop keeps the machine; the memory loop molds down."""
        topo = dual_socket_small()
        app = make_mixed(timesteps=14)
        sched = IlanScheduler()
        OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
        compute = sched.controller("mixed.compute").settled_config
        memory = sched.controller("mixed.memory").settled_config
        assert compute.num_threads == 16
        assert memory.num_threads < 16


class TestFirstTouchDynamics:
    def test_pages_homed_after_first_timestep(self, small):
        app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=64)
        rt = OpenMPRuntime(small, scheduler="ilan", seed=0)
        rt.run_application(app)
        region = rt.last_ctx.mem.region("data")
        assert region.pages.untouched_fraction() == 0.0

    def test_ilan_homes_blocked_pages_across_nodes(self, small):
        app = make_synthetic(
            timesteps=2, num_tasks=16, total_iters=64, region_mib=64, blocked_fraction=1.0
        )
        rt = OpenMPRuntime(small, scheduler="ilan", seed=0)
        rt.run_application(app)
        region = rt.last_ctx.mem.region("data")
        w = region.pages.region_home_weights()
        # deterministic block distribution spreads homes over all 4 nodes
        assert np.all(w > 0.1)


class TestTraceIntegration:
    def test_trace_covers_whole_run(self, small):
        app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=32)
        rt = OpenMPRuntime(small, scheduler="baseline", seed=0, trace=True)
        rt.run_application(app)
        trace = rt.last_ctx.trace
        assert len(trace.taskloops) == 2
        assert len(trace.tasks) == 32
        # every chunk index executed exactly once per encounter
        first = [t for t in trace.tasks if t.start < trace.taskloops[0].end]
        assert sorted(t.chunk_index for t in first) == list(range(16))
