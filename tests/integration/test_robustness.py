"""Robustness integration tests: noise under load, UMA, extreme shapes."""

import numpy as np
import pytest

from repro.interference.noise import NoiseParams
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers import SCHEDULERS, create_scheduler
from repro.topology.machine import MachineTopology
from repro.topology.presets import single_node
from repro.workloads.synthetic import make_synthetic

ALL_SCHEDULERS = ("baseline", "worksharing", "ilan", "ilan-nomold", "affinity-hint")


class TestNoiseUnderLoad:
    """External noise firing while taskloops execute must not corrupt
    accounting: work conservation and monotone clocks hold throughout."""

    def test_heavy_noise_all_schedulers(self, small):
        app = make_synthetic(timesteps=4, num_tasks=32, total_iters=128, region_mib=64)
        noise = NoiseParams(
            mean_interval=0.0005, mean_duration=0.001, slow_factor=0.4, cores_fraction=0.25
        )
        for sched in ALL_SCHEDULERS:
            res = OpenMPRuntime(small, scheduler=sched, seed=1, noise=noise).run_application(app)
            expected = 16 if sched == "worksharing" else 32
            assert all(r.tasks_executed == expected for r in res.taskloops), sched
            assert res.total_time > 0

    def test_noise_only_slows_never_breaks_determinism(self, small):
        app = make_synthetic(timesteps=3, num_tasks=16, total_iters=64, region_mib=32)
        noise = NoiseParams(mean_interval=0.002, mean_duration=0.004, slow_factor=0.5)
        a = OpenMPRuntime(small, scheduler="ilan", seed=2, noise=noise).run_application(app)
        b = OpenMPRuntime(small, scheduler="ilan", seed=2, noise=noise).run_application(app)
        assert a.total_time == b.total_time

    def test_ilan_still_settles_under_noise(self, small):
        from repro.core.moldability import Phase
        from repro.core.scheduler import IlanScheduler

        app = make_synthetic(
            mem_frac=0.8, blocked_fraction=0.0, gamma=1.2, timesteps=14,
            num_tasks=32, total_iters=128, region_mib=64,
        )
        noise = NoiseParams(mean_interval=0.01, mean_duration=0.003, slow_factor=0.6)
        sched = IlanScheduler()
        OpenMPRuntime(small, scheduler=sched, seed=0, noise=noise).run_application(app)
        assert sched.controller("synthetic.loop").phase is Phase.SETTLED


class TestUmaMachine:
    """One NUMA node: hierarchical scheduling degenerates gracefully."""

    @pytest.fixture
    def uma8(self):
        return single_node(8)

    def test_all_schedulers_run(self, uma8):
        app = make_synthetic(timesteps=3, num_tasks=16, total_iters=64, region_mib=32)
        times = {}
        for sched in ALL_SCHEDULERS:
            res = OpenMPRuntime(uma8, scheduler=sched, seed=0).run_application(app)
            times[sched] = res.total_time
        # no scheduler catastrophically loses on UMA (< 25% spread)
        assert max(times.values()) < 1.25 * min(times.values())

    def test_ilan_uses_whole_machine(self, uma8):
        app = make_synthetic(timesteps=6, num_tasks=16, total_iters=64, region_mib=32)
        res = OpenMPRuntime(uma8, scheduler="ilan", seed=0).run_application(app)
        assert res.weighted_avg_threads == pytest.approx(8.0)


class TestExtremeShapes:
    def test_single_core_machine(self):
        topo = single_node(1)
        app = make_synthetic(timesteps=2, num_tasks=8, total_iters=64, region_mib=16)
        for sched in ("baseline", "ilan", "worksharing"):
            res = OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
            assert res.total_time > 0, sched

    def test_many_small_nodes(self):
        topo = MachineTopology.build(
            num_sockets=2, nodes_per_socket=8, ccds_per_node=1, cores_per_ccd=1
        )
        app = make_synthetic(timesteps=3, num_tasks=32, total_iters=128, region_mib=32)
        res = OpenMPRuntime(topo, scheduler="ilan", seed=0).run_application(app)
        assert all(r.tasks_executed == 32 for r in res.taskloops)

    def test_single_task_taskloop(self, small):
        app = make_synthetic(timesteps=2, num_tasks=1, total_iters=1, region_mib=16)
        for sched in ALL_SCHEDULERS:
            res = OpenMPRuntime(small, scheduler=sched, seed=0).run_application(app)
            assert all(r.tasks_executed == 1 for r in res.taskloops), sched

    def test_heterogeneous_core_speeds(self):
        """Static asymmetry: ILAN's node-perf ranking finds the fast nodes."""
        from repro.core.scheduler import IlanScheduler
        from repro.topology.machine import Core, MachineTopology

        base = MachineTopology.build(
            num_sockets=1, nodes_per_socket=2, ccds_per_node=1, cores_per_ccd=4
        )
        cores = tuple(
            Core(c.core_id, c.ccd_id, c.node_id, c.socket_id,
                 base_speed=1.0 if c.node_id == 1 else 0.6)
            for c in base.cores
        )
        topo = MachineTopology.from_components(
            name="asym", sockets=base.sockets, nodes=base.nodes, ccds=base.ccds, cores=cores
        )
        app = make_synthetic(
            mem_frac=0.7, blocked_fraction=0.0, gamma=1.5, timesteps=14,
            num_tasks=32, total_iters=128, region_mib=64,
        )
        sched = IlanScheduler()
        OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
        cfg = sched.controller("synthetic.loop").settled_config
        if cfg.num_threads <= 4:
            # a molded configuration must sit on the fast node
            assert cfg.node_mask.indices() == [1]
