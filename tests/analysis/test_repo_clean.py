"""Meta-test: the shipped tree satisfies its own static invariants.

This is the same gate CI runs (``python -m repro.analysis --project src
tests scripts --strict``), expressed as a test so a violation fails fast
in any local pytest run — and so the analyzer cannot silently rot.  Both
passes run: the per-file rules and the whole-program LOCK002 / SEED002 /
WIRE002 pass (uncached — the meta-test must not depend on cache state).

Policy assertions ride along: the deterministic core (``sim/``,
``core/``, ``serve/``, ``exp/``) must have *zero* baseline entries —
findings there get fixed, not grandfathered (DESIGN.md §6).
"""

import json
from collections import Counter
from pathlib import Path

from repro.analysis import ALL_RULES, PROJECT_RULES
from repro.analysis.baseline import load_baseline, partition_findings
from repro.analysis.rules import all_rule_ids
from repro.analysis.run import analyze_project_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis-baseline.json"
SCAN_ROOTS = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "scripts"]

#: repro subpackages where grandfathering is forbidden outright.
NO_BASELINE_PACKAGES = ("repro/sim/", "repro/core/", "repro/serve/", "repro/exp/")


def _scan():
    result = analyze_project_paths(SCAN_ROOTS, ALL_RULES, PROJECT_RULES)
    assert result.files_scanned > 150, (
        "scan missed most of the tree — path setup broken?"
    )
    return result.findings


def test_tree_has_no_unbaselined_findings():
    findings = _scan()
    baseline = load_baseline(BASELINE) if BASELINE.exists() else Counter()
    new, _grandfathered, stale, retired = partition_findings(
        findings, baseline, known_rules=all_rule_ids()
    )
    assert not new, "unbaselined findings:\n" + "\n".join(
        f.render() for f in new
    )
    assert not stale, "stale baseline entries (delete them):\n" + "\n".join(stale)
    assert not retired, (
        "baseline entries for retired rule ids:\n" + "\n".join(retired)
    )


def test_core_packages_have_no_baseline_entries():
    if not BASELINE.exists():
        return  # no baseline at all: trivially satisfied
    data = json.loads(BASELINE.read_text(encoding="utf-8"))
    offenders = [
        entry
        for entry in data.get("findings", [])
        if any(marker in entry["path"] for marker in NO_BASELINE_PACKAGES)
    ]
    assert not offenders, (
        "sim/, core/, serve/ and exp/ must stay baseline-free; fix these instead "
        f"of grandfathering: {offenders}"
    )
