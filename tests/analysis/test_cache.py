"""Content-hash cache: hit/miss contract, corruption tolerance, and the
warm-run CLI guarantee (second run re-parses zero unchanged files)."""

import json
from pathlib import Path

from repro.analysis.cache import (
    CACHE_DIR_DEFAULT,
    AnalysisCache,
    CacheEntry,
    analyzer_fingerprint,
    content_digest,
)
from repro.analysis.cli import main
from repro.analysis.engine import Finding
from repro.analysis.project import ModuleSummary

DIRTY = """\
import time


def stamp():
    return time.time()
"""


def entry_for(path="src/x.py", digest="d1"):
    return CacheEntry(
        digest=digest,
        findings=[Finding(path=path, line=1, col=0, rule="DET001", message="m")],
        summary=ModuleSummary(
            path=path, module="x", package=None, imports={},
            module_locks=[], functions=[], classes=[], id_sites=[],
        ),
        suppressions={3: frozenset({"DET001"}), 5: frozenset()},
    )


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache", "fp")
        cache.store("src/x.py", entry_for())
        loaded = cache.load("src/x.py", "d1")
        assert loaded is not None
        assert loaded.findings == entry_for().findings
        assert loaded.suppressions == {3: frozenset({"DET001"}), 5: frozenset()}
        assert cache.hits == 1 and cache.stores == 1

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache", "fp")
        cache.store("src/x.py", entry_for(digest="d1"))
        assert cache.load("src/x.py", "d2") is None
        assert cache.misses == 1

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache", "fp-old")
        cache.store("src/x.py", entry_for())
        fresh = AnalysisCache(tmp_path / "cache", "fp-new")
        assert fresh.load("src/x.py", "d1") is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache", "fp")
        cache.store("src/x.py", entry_for())
        (entry_file,) = list((tmp_path / "cache").glob("*.json"))
        entry_file.write_text("{not json", encoding="utf-8")
        assert cache.load("src/x.py", "d1") is None

    def test_fingerprint_depends_on_rule_selection(self):
        assert analyzer_fingerprint(["DET001"]) != analyzer_fingerprint(
            ["DET001", "LOCK002"]
        )

    def test_content_digest_is_byte_exact(self):
        assert content_digest(b"a") != content_digest(b"a ")


class TestWarmRuns:
    def _tree(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(DIRTY, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        return pkg / "fixture.py"

    def _run_json(self, capsys, *argv):
        code = main(["src", "--project", "--format", "json", *argv])
        return code, json.loads(capsys.readouterr().out)

    def test_second_run_reparses_zero_files(self, tmp_path, monkeypatch, capsys):
        self._tree(tmp_path, monkeypatch)
        _, cold = self._run_json(capsys)
        assert cold["files_parsed"] == 1 and cold["files_cached"] == 0
        _, warm = self._run_json(capsys)
        assert warm["files_parsed"] == 0
        assert warm["files_cached"] == warm["files_scanned"] == 1
        # identical findings either way
        assert warm["findings"] == cold["findings"]

    def test_edited_file_reparses_only_itself(self, tmp_path, monkeypatch, capsys):
        fixture = self._tree(tmp_path, monkeypatch)
        other = fixture.with_name("clean.py")
        other.write_text("x = 1\n", encoding="utf-8")
        self._run_json(capsys)
        fixture.write_text(DIRTY + "\n# touched\n", encoding="utf-8")
        _, warm = self._run_json(capsys)
        assert warm["files_scanned"] == 2
        assert warm["files_parsed"] == 1  # only the edited file
        assert warm["files_cached"] == 1

    def test_no_cache_flag_disables(self, tmp_path, monkeypatch, capsys):
        self._tree(tmp_path, monkeypatch)
        self._run_json(capsys)
        _, run = self._run_json(capsys, "--no-cache")
        assert run["files_parsed"] == 1 and run["files_cached"] == 0

    def test_cache_lives_under_the_default_hidden_dir(
        self, tmp_path, monkeypatch, capsys
    ):
        self._tree(tmp_path, monkeypatch)
        self._run_json(capsys)
        assert list(Path(CACHE_DIR_DEFAULT).glob("*.json"))
        # ...and the iterator never scans its own cache
        _, warm = self._run_json(capsys)
        assert warm["files_scanned"] == 1

    def test_explicit_cache_dir_enables_without_project(
        self, tmp_path, monkeypatch, capsys
    ):
        self._tree(tmp_path, monkeypatch)
        assert main(["src", "--cache-dir", "warmdir", "--format", "json"]) == 0
        capsys.readouterr()
        assert main(["src", "--cache-dir", "warmdir", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_parsed"] == 0
        assert (tmp_path / "warmdir").is_dir()
