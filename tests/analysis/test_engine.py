"""Engine mechanics: suppression semantics, parse failures, encoding
edge cases, file iteration, name resolution, package scoping, ordering."""

import ast
import os

import pytest

from repro.analysis import analyze_source, select_rules
from repro.analysis.engine import (
    PARSE_RULE_ID,
    Module,
    analyze_paths,
    decode_source,
    iter_python_files,
)
from repro.analysis.suppress import line_suppressions
from tests.analysis.conftest import OUTSIDE, SIM


class TestSuppressions:
    def test_matching_rule_noqa_suppresses(self, check):
        findings = check(
            SIM,
            """
            import time
            t = time.time()  # repro: noqa DET001 -- fixture banner only
            """,
            select="DET001",
        )
        assert findings == []

    def test_bare_noqa_suppresses_every_rule(self, check):
        findings = check(
            SIM,
            """
            import time
            t = time.time()  # repro: noqa
            """,
            select="DET001",
        )
        assert findings == []

    def test_wrong_rule_noqa_does_not_suppress(self, check):
        findings = check(
            SIM,
            """
            import time
            t = time.time()  # repro: noqa DET002 -- wrong rule id
            """,
            select="DET001",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_noqa_is_per_line_not_per_file(self, check):
        findings = check(
            SIM,
            """
            import time
            a = time.time()  # repro: noqa DET001 -- this line only
            b = time.time()
            """,
            select="DET001",
        )
        assert [f.line for f in findings] == [4]

    def test_multi_rule_list_parsed(self):
        table = line_suppressions(["x = 1  # repro: noqa DET001, DET003 -- why"])
        assert table == {1: frozenset({"DET001", "DET003"})}

    def test_plain_flake8_noqa_is_not_ours(self):
        assert line_suppressions(["x = 1  # noqa: E501"]) == {}


class TestParseFailure:
    def test_syntax_error_becomes_parse000(self, check):
        findings = check(SIM, "def broken(:\n")
        assert [f.rule for f in findings] == [PARSE_RULE_ID]
        assert "does not parse" in findings[0].message

    def test_null_bytes_become_parse000_not_a_crash(self, check):
        findings = check(SIM, "x = 1\0\n")
        assert [f.rule for f in findings] == [PARSE_RULE_ID]

    def test_empty_file_is_clean(self, check):
        assert check(SIM, "") == []


class TestEncodingEdgeCases:
    def test_bom_is_stripped(self):
        assert decode_source(b"\xef\xbb\xbfx = 1\n") == "x = 1\n"

    def test_undecodable_bytes_replaced_not_fatal(self):
        text = decode_source(b"x = 1  # caf\xe9\n")
        assert text.startswith("x = 1")

    def test_bom_file_analyzes_clean_on_disk(self, tmp_path):
        target = tmp_path / "src" / "repro" / "sim"
        target.mkdir(parents=True)
        (target / "bom.py").write_bytes(b"\xef\xbb\xbfx = 1\n")
        findings, scanned = analyze_paths([tmp_path / "src"], select_rules())
        assert scanned == 1
        assert findings == []

    def test_binary_file_reports_diagnostic_not_crash(self, tmp_path):
        (tmp_path / "junk.py").write_bytes(b"\x00\x01\x02\xff")
        findings, scanned = analyze_paths([tmp_path], select_rules())
        assert scanned == 1
        assert [f.rule for f in findings] == [PARSE_RULE_ID]

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores file modes")
    def test_unreadable_file_reports_diagnostic(self, tmp_path):
        target = tmp_path / "locked.py"
        target.write_text("x = 1\n", encoding="utf-8")
        target.chmod(0)
        try:
            findings, scanned = analyze_paths([tmp_path], select_rules())
        finally:
            target.chmod(0o644)
        assert scanned == 1
        assert [f.rule for f in findings] == [PARSE_RULE_ID]
        assert "cannot be read" in findings[0].message


class TestFileIteration:
    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("", encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text("", encoding="utf-8")
        for skipped in ("__pycache__", "quarantine", ".repro-analysis-cache", ".git"):
            (tmp_path / "pkg" / skipped).mkdir()
            (tmp_path / "pkg" / skipped / "x.py").write_text("", encoding="utf-8")
        return tmp_path

    def test_skip_directories_never_descended(self, tree):
        names = [p.name for p in iter_python_files([tree])]
        assert names == ["a.py", "b.py"]

    def test_exclude_glob_on_basename(self, tree):
        names = [
            p.name for p in iter_python_files([tree], exclude=["a.py"])
        ]
        assert names == ["b.py"]

    def test_exclude_glob_on_path(self, tree):
        assert list(iter_python_files([tree], exclude=["*/pkg/*"])) == []

    def test_explicit_file_honors_exclude(self, tree):
        target = tree / "pkg" / "a.py"
        assert list(iter_python_files([target], exclude=["a.py"])) == []
        assert list(iter_python_files([target])) == [target]

    def test_scanning_dot_works(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        names = [p.name for p in iter_python_files(["."])]
        assert names == ["a.py", "b.py"]

    def test_missing_path_raises(self, tree):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tree / "nope"]))


class TestNameResolution:
    @staticmethod
    def _module(path, source):
        return Module(path, source, ast.parse(source))

    def test_import_alias_table(self):
        mod = self._module(
            OUTSIDE,
            "import numpy as np\nfrom time import monotonic as mono\n",
        )
        assert mod.imports["np"] == "numpy"
        assert mod.imports["mono"] == "time.monotonic"

    def test_attribute_chain_through_alias(self):
        mod = self._module(OUTSIDE, "import numpy as np\nx = np.random.default_rng\n")
        attr = mod.tree.body[1].value
        assert mod.qualified_name(attr) == "numpy.random.default_rng"

    def test_relative_import_resolved_against_package(self):
        mod = self._module(
            "src/repro/serve/client.py", "from ..sim.rng import pyrandom\n"
        )
        assert mod.imports["pyrandom"] == "repro.sim.rng.pyrandom"

    def test_non_name_roots_resolve_to_none(self):
        mod = self._module(OUTSIDE, "x = factory().make\n")
        attr = mod.tree.body[0].value
        assert mod.qualified_name(attr) is None


class TestPackageScoping:
    def test_repro_package_extraction(self):
        mod = Module("src/repro/sim/rng.py", "", ast.parse(""))
        assert mod.repro_package == ("sim", "rng")
        assert mod.in_packages(("sim", "core"))
        assert not mod.in_packages(("serve",))

    def test_paths_outside_repro_have_no_package(self):
        mod = Module("scripts/calibrate.py", "", ast.parse(""))
        assert mod.repro_package is None
        assert not mod.in_packages(("sim",))

    def test_dotted_entries_scope_to_sub_packages(self):
        fed = Module("src/repro/serve/federation/router.py", "", ast.parse(""))
        serve = Module("src/repro/serve/server.py", "", ast.parse(""))
        assert fed.in_packages(("serve.federation",))
        assert not serve.in_packages(("serve.federation",))
        # a plain package entry still covers its sub-packages
        assert fed.in_packages(("serve",))
        assert serve.in_packages(("serve",))
        # a dotted prefix must match whole components, not substrings
        assert not Module(
            "src/repro/serve/federation2/x.py", "", ast.parse("")
        ).in_packages(("serve.federation",))


class TestOutputContract:
    def test_findings_sorted_and_deduplicated(self):
        src = "import time\nb = time.time()\na = time.time()\n"
        findings = analyze_source(SIM, src, select_rules("DET001"))
        assert [f.line for f in findings] == [2, 3]
        assert len(set(findings)) == len(findings)

    def test_render_and_baseline_key_shapes(self):
        src = "import time\nt = time.time()\n"
        (finding,) = analyze_source(SIM, src, select_rules("DET001"))
        assert finding.render().startswith(f"{SIM}:2:")
        assert finding.baseline_key() == (
            f"DET001::{SIM}::{finding.message}"
        )
        assert set(finding.to_json()) == {"rule", "path", "line", "col", "message"}
