"""Fixture tests for WIRE001 (protocol wire-safety) and EXC001."""

from tests.analysis.conftest import OUTSIDE, PROTOCOL, SERVE, SIM


class TestWire001JsonSafeFields:
    def test_set_field_flagged(self, check):
        findings = check(
            PROTOCOL,
            """
            from dataclasses import dataclass

            @dataclass
            class JobRequest:
                tenant: str
                tags: set[str]
            """,
            select="WIRE001",
        )
        assert [f.rule for f in findings] == ["WIRE001"]
        assert "JobRequest.tags" in findings[0].message

    def test_arbitrary_object_field_flagged(self, check):
        findings = check(
            PROTOCOL,
            """
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class Record:
                payload: np.ndarray
            """,
            select="WIRE001",
        )
        assert [f.rule for f in findings] == ["WIRE001"]

    def test_guard_json_atoms_and_containers_ok(self, check):
        findings = check(
            PROTOCOL,
            """
            from dataclasses import dataclass, field
            from typing import Any

            @dataclass
            class Record:
                job_id: str
                attempt: int
                latency_s: float | None
                params: dict[str, Any]
                history: list[str] = field(default_factory=list)
            """,
            select="WIRE001",
        )
        assert findings == []

    def test_guard_local_wire_types_composable(self, check):
        # nested protocol dataclasses and str-enums serialize fine
        findings = check(
            PROTOCOL,
            """
            import enum
            from dataclasses import dataclass
            from typing import ClassVar

            class JobState(str, enum.Enum):
                QUEUED = "queued"
                DONE = "done"

            @dataclass
            class JobRecord:
                state: JobState
                request: "JobRequest"
                WIRE_VERSION: ClassVar[int] = 1

            @dataclass
            class JobRequest:
                tenant: str
            """,
            select="WIRE001",
        )
        assert findings == []

    def test_guard_only_protocol_module_in_scope(self, check):
        src = """
        from dataclasses import dataclass

        @dataclass
        class Internal:
            callbacks: set[str]
        """
        assert check(SERVE, src, select="WIRE001") == []
        assert check(OUTSIDE, src, select="WIRE001") == []


class TestExc001ExceptionHygiene:
    def test_bare_except_flagged(self, check):
        findings = check(
            SIM,
            """
            def guard(fn):
                try:
                    fn()
                except:
                    pass
            """,
            select="EXC001",
        )
        assert [f.rule for f in findings] == ["EXC001"]
        assert "bare `except:`" in findings[0].message

    def test_bare_except_flagged_outside_repro_too(self, check):
        findings = check(
            OUTSIDE,
            """
            try:
                run()
            except:
                pass
            """,
            select="EXC001",
        )
        assert [f.rule for f in findings] == ["EXC001"]

    def test_swallowed_cancellation_flagged(self, check):
        findings = check(
            SERVE,
            """
            import asyncio

            async def worker(job):
                try:
                    await job()
                except asyncio.CancelledError:
                    pass
            """,
            select="EXC001",
        )
        assert [f.rule for f in findings] == ["EXC001"]
        assert "CancelledError" in findings[0].message

    def test_swallowed_cancellation_in_tuple_flagged(self, check):
        findings = check(
            SERVE,
            """
            import asyncio

            async def worker(job):
                try:
                    await job()
                except (ValueError, asyncio.CancelledError):
                    return None
            """,
            select="EXC001",
        )
        assert [f.rule for f in findings] == ["EXC001"]

    def test_guard_reraise_after_cleanup_ok(self, check):
        findings = check(
            SERVE,
            """
            import asyncio

            async def worker(job, writer):
                try:
                    await job()
                except asyncio.CancelledError:
                    writer.close()
                    raise
            """,
            select="EXC001",
        )
        assert findings == []

    def test_guard_named_exceptions_ok(self, check):
        findings = check(
            SIM,
            """
            def guard(fn):
                try:
                    fn()
                except (ValueError, KeyError):
                    return None
            """,
            select="EXC001",
        )
        assert findings == []
