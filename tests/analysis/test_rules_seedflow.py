"""SEED002: accepted seeds must reach an RNG, with FP guards."""


def seed002(project_check, files):
    return [f for f in project_check(files, select="SEED002")]


class TestTruePositives:
    def test_seed_never_used_at_all(self, project_check):
        findings = seed002(project_check, {
            "src/repro/exp/runner.py": """
                def run(benchmark, seed):
                    print(benchmark)
            """,
        })
        (finding,) = findings
        assert finding.rule == "SEED002"
        assert "`run` accepts seed parameter `seed`" in finding.message

    def test_seed_forwarded_then_dropped(self, project_check):
        """The bug SEED001 cannot see: the entry point dutifully threads
        the seed into a helper, and the helper ignores it."""
        findings = seed002(project_check, {
            "src/repro/exp/runner.py": """
                def run(benchmark, seed):
                    _go(benchmark, seed)

                def _go(benchmark, seed):
                    print(benchmark)
            """,
        })
        (finding,) = findings
        assert finding.line == 2  # anchored at the public entry point
        assert "which drops `seed`" in finding.message

    def test_drop_across_modules(self, project_check):
        findings = seed002(project_check, {
            "src/repro/exp/entry.py": """
                from repro.exp import helper

                def campaign(spec, seed):
                    helper.execute(spec, seed)
            """,
            "src/repro/exp/helper.py": """
                def execute(spec, seed):
                    return spec
            """,
        })
        # the dropping function is itself public and in scope: one
        # finding there, not two along the chain
        (finding,) = findings
        assert finding.path == "src/repro/exp/helper.py"
        assert "`execute`" in finding.message

    def test_rng_param_counts_like_seed(self, project_check):
        findings = seed002(project_check, {
            "src/repro/sim/x.py": """
                def sample(rng, n):
                    return n
            """,
        })
        assert len(findings) == 1


class TestFalsePositiveGuards:
    def test_rng_sink_is_a_use(self, project_check):
        assert seed002(project_check, {
            "src/repro/sim/x.py": """
                from repro.sim.rng import stream

                def run(seed):
                    return stream(seed, "x")
            """,
        }) == []

    def test_generic_use_counts(self, project_check):
        assert seed002(project_check, {
            "src/repro/sim/x.py": """
                def run(seed):
                    return seed + 1
            """,
        }) == []

    def test_storing_on_self_counts(self, project_check):
        assert seed002(project_check, {
            "src/repro/serve/x.py": """
                class S:
                    def __init__(self, seed):
                        self._seed = seed
            """,
        }) == []

    def test_closure_capture_counts(self, project_check):
        """A factory closing over its seed param uses it — the nested
        function is a separate execution context for lock analysis, but
        the capture itself is a real use of the enclosing parameter."""
        assert seed002(project_check, {
            "src/repro/serve/x.py": """
                def make_factory(seed):
                    def factory(name):
                        return _build(name, seed=seed)

                    return factory

                def _build(name, seed):
                    return (name, seed * 2)
            """,
        }) == []

    def test_shadowed_name_in_closure_is_not_a_capture(self, project_check):
        assert len(seed002(project_check, {
            "src/repro/serve/x.py": """
                def make_factory(seed):
                    def factory(seed):
                        return seed + 1

                    return factory
            """,
        })) == 1

    def test_unknown_callee_assumed_to_use(self, project_check):
        assert seed002(project_check, {
            "src/repro/exp/x.py": """
                import numpy

                def run(seed):
                    numpy.something(seed)
            """,
        }) == []

    def test_star_args_are_opaque(self, project_check):
        assert seed002(project_check, {
            "src/repro/exp/x.py": """
                def run(seed, args):
                    _go(*args, seed=seed)

                def _go(*args, **kwargs):
                    print(args)
            """,
        }) == []

    def test_abstract_and_trivial_functions_skipped(self, project_check):
        assert seed002(project_check, {
            "src/repro/runtime/x.py": """
                from abc import ABC, abstractmethod

                class Policy(ABC):
                    @abstractmethod
                    def pick(self, rng):
                        ...

                def stub(seed):
                    raise NotImplementedError
            """,
        }) == []

    def test_override_of_base_method_skipped(self, project_check):
        """An override's signature is the base's contract; a no-op
        implementation legitimately ignores the rng it must accept."""
        assert seed002(project_check, {
            "src/repro/runtime/x.py": """
                from abc import ABC, abstractmethod

                class Policy(ABC):
                    @abstractmethod
                    def pick(self, rng):
                        ...

                class NoopPolicy(Policy):
                    def pick(self, rng):
                        return None
            """,
        }) == []

    def test_private_and_out_of_scope_functions_skipped(self, project_check):
        assert seed002(project_check, {
            "src/repro/exp/x.py": """
                def _internal(seed):
                    pass
            """,
            "scripts/tool.py": """
                def run(seed):
                    pass
            """,
        }) == []

    def test_forward_into_used_chain_is_clean(self, project_check):
        assert seed002(project_check, {
            "src/repro/exp/entry.py": """
                from repro.exp import helper

                def campaign(spec, seed):
                    helper.execute(spec, seed)
            """,
            "src/repro/exp/helper.py": """
                from repro.sim.rng import pyrandom

                def execute(spec, seed):
                    return pyrandom(seed, spec)
            """,
        }) == []

    def test_noqa_at_entry_point_suppresses(self, project_check):
        assert seed002(project_check, {
            "src/repro/exp/x.py": """
                def run(benchmark, seed):  # repro: noqa SEED002 -- api compat shim
                    print(benchmark)
            """,
        }) == []
