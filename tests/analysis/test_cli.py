"""CLI contract: exit codes, JSON schema, baseline round-trip, rule
selection, and the ``python -m repro.analysis`` entry point."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = """\
import time


def stamp():
    return time.time()
"""

CLEAN = """\
def stamp(clock):
    return clock.now
"""


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tiny analyzable tree with one DET001 violation; cwd moved there
    so the default baseline path resolves inside it."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text(DIRTY, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_report_only_run_exits_zero(self, tree, capsys):
        assert main(["src"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "1 new" in out

    def test_strict_run_fails_on_findings(self, tree, capsys):
        assert main(["src", "--strict"]) == 1

    def test_strict_run_passes_on_clean_tree(self, tree, capsys):
        (tree / "src" / "repro" / "sim" / "fixture.py").write_text(
            CLEAN, encoding="utf-8"
        )
        assert main(["src", "--strict"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_unknown_rule_id_is_usage_error(self, tree, capsys):
        assert main(["src", "--select", "NOPE999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tree, capsys):
        assert main(["no/such/dir", "--strict"]) == 2

    def test_corrupt_baseline_is_usage_error(self, tree, capsys):
        Path("analysis-baseline.json").write_text("[]", encoding="utf-8")
        assert main(["src", "--strict"]) == 2
        assert "corrupt baseline" in capsys.readouterr().err


class TestBaselineRoundTrip:
    def test_write_then_strict_passes(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        assert main(["src", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

        data = json.loads(Path("analysis-baseline.json").read_text())
        assert data["version"] == 1
        assert [e["rule"] for e in data["findings"]] == ["DET001"]
        assert "line" not in data["findings"][0]  # line-number independent

    def test_baseline_survives_line_shuffle(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        shifted = "# a new leading comment\n" + DIRTY
        (tree / "src" / "repro" / "sim" / "fixture.py").write_text(
            shifted, encoding="utf-8"
        )
        assert main(["src", "--strict"]) == 0

    def test_fixed_finding_reports_stale_entry(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        (tree / "src" / "repro" / "sim" / "fixture.py").write_text(
            CLEAN, encoding="utf-8"
        )
        assert main(["src", "--strict"]) == 0  # stale entries never fail CI
        out = capsys.readouterr().out
        assert "stale baseline entry" in out

    def test_second_identical_finding_is_new(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        doubled = DIRTY + "\n\ndef stamp2():\n    return time.time()\n"
        (tree / "src" / "repro" / "sim" / "fixture.py").write_text(
            doubled, encoding="utf-8"
        )
        # the two findings share a baseline key but count=1 absorbs only one
        assert main(["src", "--strict"]) == 1

    def test_no_baseline_flag_reports_everything(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        assert main(["src", "--strict", "--no-baseline"]) == 1


class TestJsonOutput:
    def test_schema_keys_and_findings(self, tree, capsys):
        assert main(["src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version", "files_scanned", "files_parsed", "files_cached",
            "project", "findings", "baselined",
            "stale_baseline_entries", "retired_baseline_entries", "strict",
        }
        assert payload["version"] == 2
        assert payload["files_scanned"] == 1
        assert payload["files_parsed"] == 1
        assert payload["files_cached"] == 0
        assert payload["project"] is False
        assert payload["strict"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("src/repro/sim/fixture.py")
        assert {"line", "col", "message"} <= set(finding)


class TestRuleSelection:
    def test_select_narrows_rules(self, tree, capsys):
        # the DET001 violation is invisible to a DET002-only run
        assert main(["src", "--strict", "--select", "DET002"]) == 0
        assert main(["src", "--strict", "--select", "DET002,DET001"]) == 1

    def test_ignore_drops_rules(self, tree, capsys):
        assert main(["src", "--strict", "--ignore", "DET001"]) == 0

    def test_list_rules_shows_full_catalog(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "ASY001",
            "LOCK001", "WIRE001", "EXC001", "SEED001",
        ):
            assert rule_id in out


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tree):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "--strict"],
            capture_output=True, text=True, env=env, cwd=tree,
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout


class TestSuppressionEndToEnd:
    def test_noqa_clears_strict_run(self, tree, capsys):
        suppressed = textwrap.dedent(
            """\
            import time


            def stamp():
                return time.time()  # repro: noqa DET001 -- fixture banner
            """
        )
        (tree / "src" / "repro" / "sim" / "fixture.py").write_text(
            suppressed, encoding="utf-8"
        )
        assert main(["src", "--strict"]) == 0
