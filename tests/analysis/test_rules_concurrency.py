"""Fixture tests for the concurrency rules: ASY001 and LOCK001."""

from tests.analysis.conftest import OUTSIDE, SERVE, SIM


class TestAsy001BlockingInAsync:
    def test_time_sleep_in_coroutine_flagged(self, check):
        findings = check(
            SERVE,
            """
            import time

            async def handler(reader, writer):
                time.sleep(0.1)
            """,
            select="ASY001",
        )
        assert [f.rule for f in findings] == ["ASY001"]
        assert "time.sleep" in findings[0].message
        assert "handler" in findings[0].message

    def test_sync_file_io_in_coroutine_flagged(self, check):
        findings = check(
            SERVE,
            """
            async def dump(state):
                with open("state.json", "w") as fh:
                    fh.write(state)
            """,
            select="ASY001",
        )
        assert [f.rule for f in findings] == ["ASY001"]
        assert "`open`" in findings[0].message

    def test_guard_asyncio_sleep_ok(self, check):
        findings = check(
            SERVE,
            """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
            """,
            select="ASY001",
        )
        assert findings == []

    def test_guard_sync_function_may_block(self, check):
        findings = check(
            SERVE,
            """
            import time

            def warmup():
                time.sleep(0.1)
            """,
            select="ASY001",
        )
        assert findings == []

    def test_guard_nested_sync_def_is_executor_material(self, check):
        # a sync closure handed to run_in_executor is *supposed* to block
        findings = check(
            SERVE,
            """
            import asyncio
            import time

            async def handler(loop):
                def work():
                    time.sleep(1.0)
                await loop.run_in_executor(None, work)
            """,
            select="ASY001",
        )
        assert findings == []

    def test_guard_scoped_to_serve(self, check):
        src = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert check(SIM, src, select="ASY001") == []


class TestLock001InconsistentLocking:
    def test_bare_write_to_guarded_attr_flagged(self, check):
        findings = check(
            SIM,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """,
            select="LOCK001",
        )
        assert [f.rule for f in findings] == ["LOCK001"]
        assert "_count" in findings[0].message
        assert "reset" in findings[0].message

    def test_subscript_write_counts_as_write(self, check):
        findings = check(
            SIM,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}

                def put(self, k, v):
                    with self._lock:
                        self._table[k] = v

                def evict(self, k):
                    self._table[k] = None
            """,
            select="LOCK001",
        )
        assert [f.rule for f in findings] == ["LOCK001"]
        assert "_table" in findings[0].message

    def test_guard_init_writes_exempt(self, check):
        # __init__ runs before the object is shared; bare writes are fine
        findings = check(
            SIM,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
            """,
            select="LOCK001",
        )
        assert findings == []

    def test_guard_consistently_unlocked_attr_ok(self, check):
        # an attribute never written under the lock is (statically) not
        # part of the locked protocol — stats counters, config snapshots
        findings = check(
            SIM,
            """
            import threading

            class Mixed:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._shared = 0
                    self._stats = 0

                def update(self):
                    with self._lock:
                        self._shared += 1
                    self._stats += 1
            """,
            select="LOCK001",
        )
        assert findings == []

    def test_guard_lockless_class_ignored(self, check):
        findings = check(
            SIM,
            """
            class Plain:
                def set(self, v):
                    self._v = v
            """,
            select="LOCK001",
        )
        assert findings == []

    def test_guard_asyncio_primitives_out_of_scope(self, check):
        # single-threaded event-loop code guards with asyncio.Condition;
        # LOCK001 deliberately covers only threading locks
        findings = check(
            SERVE,
            """
            import asyncio

            class Admission:
                def __init__(self):
                    self._cond = asyncio.Condition()
                    self._inflight = 0

                async def admit(self):
                    async with self._cond:
                        self._inflight += 1

                def observe(self):
                    self._inflight -= 1
            """,
            select="LOCK001",
        )
        assert findings == []

    def test_guard_applies_only_under_repro(self, check):
        src = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0
        """
        assert check(OUTSIDE, src, select="LOCK001") == []
