"""Fixture tests for the determinism rules: DET001/DET002/DET003/SEED001.

Every rule gets at least one asserted true positive and one
false-positive guard; snippets are inline strings so the analyzer can
scan ``tests/`` without tripping over its own fixtures.
"""

from tests.analysis.conftest import CORE, EXP, OUTSIDE, RUNTIME, SERVE, SIM


class TestDet001WallClock:
    def test_attribute_call_flagged(self, check):
        findings = check(
            SIM,
            """
            import time

            def stamp():
                return time.time()
            """,
            select="DET001",
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert "time.time" in findings[0].message
        assert findings[0].line == 5

    def test_from_import_bare_name_flagged(self, check):
        findings = check(
            RUNTIME,
            """
            from time import monotonic

            def stamp():
                return monotonic()
            """,
            select="DET001",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_aliased_import_resolved(self, check):
        findings = check(
            CORE,
            """
            from time import perf_counter as tick

            def stamp():
                return tick()
            """,
            select="DET001",
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert "time.perf_counter" in findings[0].message

    def test_datetime_now_flagged(self, check):
        findings = check(
            EXP,
            """
            import datetime

            def today():
                return datetime.datetime.now()
            """,
            select="DET001",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_guard_serve_may_read_wall_clock(self, check):
        # serve/ measures real latency; DET001 scopes to sim/core/runtime/exp
        assert check(SERVE, "import time\nt = time.time()\n", select="DET001") == []

    def test_guard_local_name_collision_not_flagged(self, check):
        # a local variable merely *named* like the function is not a clock read
        findings = check(
            SIM,
            """
            def advance(monotonic):
                return monotonic()
            """,
            select="DET001",
        )
        assert findings == []

    def test_guard_sim_clock_reads_allowed(self, check):
        findings = check(
            SIM,
            """
            def due(sim):
                return sim.clock.now
            """,
            select="DET001",
        )
        assert findings == []


class TestDet002AmbientRng:
    def test_module_level_random_flagged(self, check):
        findings = check(
            SIM,
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """,
            select="DET002",
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert "random.uniform" in findings[0].message

    def test_unseeded_constructor_flagged(self, check):
        findings = check(
            SERVE,
            """
            import random

            def make():
                return random.Random()
            """,
            select="DET002",
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert "never replays" in findings[0].message

    def test_numpy_legacy_global_flagged(self, check):
        findings = check(
            EXP,
            """
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)
            """,
            select="DET002",
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_guard_seeded_constructor_ok(self, check):
        findings = check(
            SERVE,
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
            select="DET002",
        )
        assert findings == []

    def test_guard_injected_generator_methods_ok(self, check):
        # `rng.random()` is a method on an injected generator, not the
        # module-level `random.random`
        findings = check(
            SIM,
            """
            def jitter(rng):
                return rng.random() + rng.uniform(0.0, 1.0)
            """,
            select="DET002",
        )
        assert findings == []

    def test_guard_outside_seeded_packages_ignored(self, check):
        src = "import random\nx = random.random()\n"
        assert check(OUTSIDE, src, select="DET002") == []


class TestDet003TimeEquality:
    def test_deadline_equality_flagged(self, check):
        findings = check(
            SIM,
            """
            def due(ev, now):
                return ev.deadline == now
            """,
            select="DET003",
        )
        assert [f.rule for f in findings] == ["DET003"]
        assert "DUE_REL_TOL" in findings[0].message

    def test_not_equal_flagged_too(self, check):
        findings = check(
            RUNTIME,
            """
            def moved(start, t):
                return start != t
            """,
            select="DET003",
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_snake_case_token_detected(self, check):
        findings = check(
            EXP,
            """
            def at_boundary(task, window_end):
                return task.end_time == window_end
            """,
            select="DET003",
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_guard_string_state_comparison_ok(self, check):
        # `phase == "end"` compares against a string, not a float clock
        findings = check(
            SIM,
            """
            def finished(phase):
                return phase == "end"
            """,
            select="DET003",
        )
        assert findings == []

    def test_guard_non_time_identifiers_ok(self, check):
        findings = check(
            SIM,
            """
            def same_node(a, b):
                return a.node == b.node and a.count != b.count
            """,
            select="DET003",
        )
        assert findings == []

    def test_guard_ordering_comparisons_ok(self, check):
        # only ==/!= are magnitude-dependent traps; </<= are fine
        findings = check(
            SIM,
            """
            def before(deadline, now):
                return deadline <= now
            """,
            select="DET003",
        )
        assert findings == []


class TestSeed001SeedlessEntryPoint:
    def test_hidden_seed_flagged(self, check):
        findings = check(
            EXP,
            """
            import numpy as np

            def sample_plan():
                rng = np.random.default_rng(12345)
                return rng.integers(0, 10)
            """,
            select="SEED001",
        )
        assert [f.rule for f in findings] == ["SEED001"]
        assert "sample_plan" in findings[0].message

    def test_guard_seed_parameter_ok(self, check):
        findings = check(
            EXP,
            """
            import numpy as np

            def sample_plan(seed):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10)
            """,
            select="SEED001",
        )
        assert findings == []

    def test_guard_rng_threaded_from_param_ok(self, check):
        findings = check(
            SERVE,
            """
            from repro.sim.rng import pyrandom

            def backoff(base_seed, tenant):
                return pyrandom(base_seed, "serve", tenant)
            """,
            select="SEED001",
        )
        assert findings == []

    def test_guard_self_attribute_seed_ok(self, check):
        # methods re-deriving their stream from self.seed are replayable
        # through the constructor
        findings = check(
            SERVE,
            """
            from repro.sim.rng import stream

            class Plan:
                def __init__(self, seed):
                    self.seed = seed

                def decide(self, name):
                    return stream(self.seed, "plan", name)
            """,
            select="SEED001",
        )
        assert findings == []

    def test_guard_private_helpers_exempt(self, check):
        findings = check(
            EXP,
            """
            import numpy as np

            def _fixture_rng():
                return np.random.default_rng(0)
            """,
            select="SEED001",
        )
        assert findings == []
