"""Fixture tests for the I/O durability rule: IO001."""

from tests.analysis.conftest import EXP, OUTSIDE, SERVE, SIM


class TestIo001TruePositives:
    def test_open_write_mode_flagged(self, check):
        findings = check(
            EXP,
            """
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
            """,
            select="IO001",
        )
        assert [f.rule for f in findings] == ["IO001"]
        assert "atomic_write" in findings[0].message

    def test_append_and_exclusive_modes_flagged(self, rule_ids):
        for mode in ("a", "xb", "r+", "wb"):
            assert rule_ids(
                SERVE,
                f"""
                def log(path, line):
                    fh = open(path, {mode!r})
                """,
                select="IO001",
            ) == ["IO001"], mode

    def test_mode_keyword_flagged(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            def save(path):
                open(path, mode="w").write("x")
            """,
            select="IO001",
        ) == ["IO001"]

    def test_path_write_text_flagged(self, check):
        findings = check(
            EXP,
            """
            def save(path, payload):
                path.write_text(payload)
            """,
            select="IO001",
        )
        assert [f.rule for f in findings] == ["IO001"]
        assert "write_text" in findings[0].message

    def test_path_write_bytes_flagged(self, rule_ids):
        assert rule_ids(
            SERVE,
            """
            def save(path, payload):
                path.write_bytes(payload)
            """,
            select="IO001",
        ) == ["IO001"]

    def test_path_open_write_flagged(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            def save(path, text):
                with path.open("w") as fh:
                    fh.write(text)
            """,
            select="IO001",
        ) == ["IO001"]

    def test_from_import_alias_flagged(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            from io import open as iopen

            def save(path, text):
                iopen(path, "w").write(text)
            """,
            select="IO001",
        ) == ["IO001"]


class TestIo001FalsePositiveGuards:
    def test_guard_read_modes_ok(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            def load(path):
                with open(path) as fh:
                    default = fh.read()
                with open(path, "rb") as fh:
                    return fh.read() or default
            """,
            select="IO001",
        ) == []

    def test_guard_read_text_read_bytes_ok(self, rule_ids):
        assert rule_ids(
            SERVE,
            """
            def load(path):
                return path.read_text() + str(path.read_bytes())
            """,
            select="IO001",
        ) == []

    def test_guard_non_constant_mode_undecidable_ok(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            def reopen(path, mode):
                return open(path, mode)
            """,
            select="IO001",
        ) == []

    def test_guard_atomic_write_itself_ok(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            from repro.ioutil import atomic_write

            def save(path, text):
                atomic_write(path, text)
            """,
            select="IO001",
        ) == []

    def test_guard_outside_durable_packages_ok(self, rule_ids):
        snippet = """
        def save(path, text):
            path.write_text(text)
            open(path, "w").write(text)
        """
        assert rule_ids(SIM, snippet, select="IO001") == []
        assert rule_ids(OUTSIDE, snippet, select="IO001") == []

    def test_guard_journal_module_allowlisted(self, rule_ids):
        assert rule_ids(
            "src/repro/exp/journal.py",
            """
            def _open(path):
                return open(path, "ab")
            """,
            select="IO001",
        ) == []

    def test_noqa_suppression_respected(self, rule_ids):
        assert rule_ids(
            EXP,
            """
            def save(path, text):
                path.write_text(text)  # repro: noqa IO001 -- scratch file, never trusted
            """,
            select="IO001",
        ) == []
