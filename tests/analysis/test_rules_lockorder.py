"""LOCK002: lock-order cycles across modules, with FP guards."""


def lock002(project_check, files):
    return [f for f in project_check(files, select="LOCK002")]


class TestTruePositives:
    def test_same_class_inversion(self, project_check):
        findings = lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                class X:
                    def __init__(self):
                        self._lx = threading.Lock()
                        self._ly = threading.Lock()
                    def fwd(self):
                        with self._lx:
                            with self._ly:
                                pass
                    def rev(self):
                        with self._ly:
                            with self._lx:
                                pass
            """,
        })
        (finding,) = findings
        assert finding.rule == "LOCK002"
        assert "repro.serve.x.X._lx" in finding.message
        assert "repro.serve.x.X._ly" in finding.message

    def test_cross_module_cycle_reports_both_witness_paths(self, project_check):
        """The seeded deadlock: module a takes A then calls into b which
        takes B; module b takes B then calls into a which takes A.  The
        finding must carry a witness path for each direction."""
        findings = lock002(project_check, {
            "src/repro/serve/a.py": """
                import threading
                from repro.serve import b

                LOCK_A = threading.Lock()

                def fa():
                    with LOCK_A:
                        b.fb_inner()

                def fa_inner():
                    with LOCK_A:
                        pass
            """,
            "src/repro/serve/b.py": """
                import threading
                from repro.serve import a

                LOCK_B = threading.Lock()

                def fb():
                    with LOCK_B:
                        a.fa_inner()

                def fb_inner():
                    with LOCK_B:
                        pass
            """,
        })
        (finding,) = findings
        message = finding.message
        # one witness per direction, each naming its call chain
        assert "repro.serve.a.LOCK_A then repro.serve.b.LOCK_B" in message
        assert "repro.serve.b.LOCK_B then repro.serve.a.LOCK_A" in message
        assert "fa (src/repro/serve/a.py:" in message
        assert "-> fb_inner (src/repro/serve/b.py:" in message
        assert "fb (src/repro/serve/b.py:" in message
        assert "-> fa_inner (src/repro/serve/a.py:" in message

    def test_acquire_statement_sites_count(self, project_check):
        findings = lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def fwd():
                    A.acquire()
                    B.acquire()
                    B.release()
                    A.release()

                def rev():
                    B.acquire()
                    A.acquire()
                    A.release()
                    B.release()
            """,
        })
        assert len(findings) == 1

    def test_one_finding_per_distinct_cycle(self, project_check):
        findings = lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def f1():
                    with A:
                        with B:
                            pass

                def f2():
                    with B:
                        with A:
                            pass

                def f3():
                    with B:
                        with A:
                            pass
            """,
        })
        assert len(findings) == 1  # same lock set, one report


class TestFalsePositiveGuards:
    def test_consistent_order_everywhere_is_clean(self, project_check):
        assert lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def f1():
                    with A:
                        with B:
                            pass

                def f2():
                    with A:
                        with B:
                            pass
            """,
        }) == []

    def test_release_resets_the_held_set(self, project_check):
        assert lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def f1():
                    A.acquire()
                    A.release()
                    B.acquire()
                    B.release()

                def f2():
                    B.acquire()
                    B.release()
                    A.acquire()
                    A.release()
            """,
        }) == []

    def test_unknown_lock_objects_make_no_edges(self, project_check):
        # locks held in local variables are unresolvable: silence, not noise
        assert lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                def f1(la, lb):
                    with la:
                        with lb:
                            pass

                def f2(la, lb):
                    with lb:
                        with la:
                            pass
            """,
        }) == []

    def test_non_lock_context_managers_ignored(self, project_check):
        assert lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()

                def f(path):
                    with open(path) as fh:
                        with A:
                            fh.read()
            """,
        }) == []

    def test_witness_suppressible_with_noqa(self, project_check):
        findings = lock002(project_check, {
            "src/repro/serve/x.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def fwd():
                    with A:
                        with B:  # repro: noqa LOCK002 -- known-benign order
                            pass

                def rev():
                    with B:
                        with A:
                            pass
            """,
        })
        # the cycle's witness anchors at the suppressed line → filtered
        assert findings == []
