"""Pass-1 summaries, the ProjectIndex, and call-graph resolution."""

import ast

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Module
from repro.analysis.project import (
    ModuleSummary,
    ProjectIndex,
    module_dotted_name,
    summarize_module,
)
from tests.analysis.conftest import OUTSIDE, SERVE, SIM


def summarize(path, source):
    return summarize_module(Module(path, source, ast.parse(source)))


def build_index(files):
    return ProjectIndex([summarize(p, s) for p, s in files.items()])


class TestModuleNames:
    def test_repro_paths_get_dotted_names(self):
        assert module_dotted_name(SIM, ("sim", "fixture")) == "repro.sim.fixture"

    def test_outside_paths_get_pseudo_names(self):
        assert module_dotted_name(OUTSIDE, None) == "scripts.fixture"

    def test_init_collapses_to_the_package(self):
        assert (
            module_dotted_name("src/repro/serve/__init__.py", ("serve", "__init__"))
            == "repro.serve"
        )


class TestSummaries:
    def test_functions_classes_and_fields(self):
        summary = summarize(SERVE, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Req:\n"
            "    benchmark: str\n"
            "    seeds: int = 1\n"
            "    def to_wire(self):\n"
            "        return {'benchmark': self.benchmark, 'seeds': self.seeds}\n"
            "def submit(req):\n"
            "    return req\n"
        ))
        (cls,) = summary.classes
        assert cls.is_dataclass
        assert cls.field_names() == ["benchmark", "seeds"]
        assert [f.has_default for f in cls.fields] == [False, True]
        assert cls.wire_keys == ["benchmark", "seeds"]
        assert {f.qual for f in summary.functions} == {"Req.to_wire", "submit"}

    def test_module_and_class_locks(self):
        summary = summarize(SERVE, (
            "import threading\n"
            "GUARD = threading.Lock()\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
        ))
        assert summary.module_locks == ["GUARD"]
        assert summary.classes[0].lock_attrs == ["_lock"]

    def test_acquires_record_held_sets(self):
        summary = summarize(SERVE, (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
        ))
        fn = next(f for f in summary.functions if f.qual == "f")
        tokens = [(a.token, a.held) for a in fn.acquires]
        assert tokens == [
            ("@repro.serve.fixture.A", ()),
            ("@repro.serve.fixture.B", ("@repro.serve.fixture.A",)),
        ]

    def test_acquire_release_statements_tracked(self):
        summary = summarize(SERVE, (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    A.acquire()\n"
            "    A.release()\n"
            "    B.acquire()\n"
        ))
        fn = next(f for f in summary.functions if f.qual == "f")
        held_at_b = [a.held for a in fn.acquires if a.token.endswith(".B")]
        assert held_at_b == [()]  # A was released before B

    def test_generic_use_vs_bare_forward(self):
        summary = summarize(SIM, (
            "def f(seed, other):\n"
            "    g(seed)\n"
            "    return other + 1\n"
        ))
        fn = summary.functions[0]
        assert fn.generic_uses == ["other"]
        (call,) = fn.calls
        assert call.pos == ("seed",)

    def test_stores_track_rebinding(self):
        summary = summarize(SIM, "def f(x):\n    x = x.upper()\n    return x\n")
        assert summary.functions[0].stores == ["x"]

    def test_json_round_trip(self):
        summary = summarize(SERVE, (
            "import threading\n"
            "L = threading.Lock()\n"
            "class C:\n"
            "    def m(self, seed):\n"
            "        with L:\n"
            "            self.helper(seed)\n"
            "    def helper(self, seed):\n"
            "        return seed\n"
            "jid = f'job-{1:05d}'\n"
        ))
        restored = ModuleSummary.from_json(summary.to_json())
        assert restored.to_json() == summary.to_json()

    def test_version_mismatch_rejected(self):
        data = summarize(SIM, "x = 1\n").to_json()
        data["version"] = -1
        with pytest.raises(ValueError):
            ModuleSummary.from_json(data)

    def test_id_sites_extracted(self):
        summary = summarize(SERVE, (
            "def build(n):\n"
            "    return f'fed-{n:05d}'\n"
            "def parse(s):\n"
            "    return s.startswith('fed-')\n"
        ))
        kinds = {(s.kind, s.prefix, s.spec) for s in summary.id_sites}
        assert kinds == {("build", "fed-", "05d"), ("parse", "fed-", "")}


class TestCallGraph:
    def test_dotted_module_function_resolves(self):
        index = build_index({
            "src/repro/serve/a.py": (
                "from repro.serve import b\n"
                "def f():\n"
                "    b.g()\n"
            ),
            "src/repro/serve/b.py": "def g():\n    pass\n",
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.a"]
        fn = summary.functions[0]
        resolution = graph.resolve_call(summary, fn, fn.calls[0])
        assert resolution.key == "repro.serve.b::g"
        assert resolution.bound is False

    def test_self_method_resolves_through_base_class(self):
        index = build_index({
            "src/repro/serve/base.py": (
                "class Base:\n"
                "    def helper(self):\n"
                "        pass\n"
            ),
            "src/repro/serve/sub.py": (
                "from repro.serve.base import Base\n"
                "class Sub(Base):\n"
                "    def run(self):\n"
                "        self.helper()\n"
            ),
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.sub"]
        fn = next(f for f in summary.functions if f.qual == "Sub.run")
        resolution = graph.resolve_call(summary, fn, fn.calls[0])
        assert resolution.key == "repro.serve.base::Base.helper"
        assert resolution.bound is True

    def test_self_attr_call_through_inferred_type(self):
        index = build_index({
            "src/repro/serve/owner.py": (
                "from repro.serve.worker import Worker\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self.w = Worker()\n"
                "    def run(self):\n"
                "        self.w.step()\n"
            ),
            "src/repro/serve/worker.py": (
                "class Worker:\n"
                "    def step(self):\n"
                "        pass\n"
            ),
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.owner"]
        fn = next(f for f in summary.functions if f.qual == "Owner.run")
        resolution = graph.resolve_call(summary, fn, fn.calls[0])
        assert resolution.key == "repro.serve.worker::Worker.step"

    def test_constructor_resolves_to_init(self):
        index = build_index({
            "src/repro/serve/x.py": (
                "class C:\n"
                "    def __init__(self, n):\n"
                "        self.n = n\n"
                "def make():\n"
                "    return C(1)\n"
            ),
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.x"]
        fn = next(f for f in summary.functions if f.qual == "make")
        resolution = graph.resolve_call(summary, fn, fn.calls[0])
        assert resolution.key == "repro.serve.x::C.__init__"
        assert resolution.bound is True

    def test_unknown_targets_resolve_to_none(self):
        index = build_index({
            "src/repro/serve/x.py": (
                "def f(cb):\n"
                "    cb()\n"
            ),
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.x"]
        fn = summary.functions[0]
        assert graph.resolve_call(summary, fn, fn.calls[0]) is None

    def test_forwarded_arg_mapping_with_bound_offset(self):
        index = build_index({
            "src/repro/serve/x.py": (
                "class C:\n"
                "    def m(self, seed, extra=None):\n"
                "        pass\n"
                "    def run(self, seed):\n"
                "        self.m(seed, extra=seed)\n"
            ),
        })
        graph = CallGraph(index)
        summary = index.by_module["repro.serve.x"]
        run = next(f for f in summary.functions if f.qual == "C.run")
        resolution = graph.resolve_call(summary, run, run.calls[0])
        _, callee = graph.callee(resolution.key)
        pairs = CallGraph.map_forwarded_args(
            run.calls[0], callee, resolution.bound
        )
        assert ("seed", "seed") in pairs
        assert ("extra", "seed") in pairs


class TestProjectIndex:
    def test_first_writer_wins_on_pseudo_name_collisions(self):
        index = build_index({
            "scripts/tool.py": "def f():\n    pass\n",
            "src/scripts/tool.py": "def g():\n    pass\n",
        })
        # "src" is stripped from pseudo-names, so both paths collide
        assert index.by_module["scripts.tool"].path == "scripts/tool.py"

    def test_mro_is_cycle_safe(self):
        index = build_index({
            "src/repro/serve/x.py": (
                "class A(B):\n"
                "    pass\n"
                "class B(A):\n"
                "    pass\n"
            ),
        })
        summary = index.by_module["repro.serve.x"]
        mro = index.class_mro(summary, summary.classes[0])
        assert [cls.name for _, cls in mro] == ["A", "B"]
