"""Shared helpers for the analyzer's own test suite.

Fixture snippets live in *string literals* (never on disk as real
``.py`` files), so running the analyzer over ``tests/`` in CI cannot
trip over its own true-positive fixtures.
"""

import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    analyze_project_source,
    analyze_source,
    select_rules,
)
from repro.analysis.rules import select_project_rules

#: Virtual paths that place a fixture snippet inside a scoped package.
SIM = "src/repro/sim/fixture.py"
CORE = "src/repro/core/fixture.py"
RUNTIME = "src/repro/runtime/fixture.py"
EXP = "src/repro/exp/fixture.py"
SERVE = "src/repro/serve/fixture.py"
PROTOCOL = "src/repro/serve/protocol.py"
OUTSIDE = "scripts/fixture.py"


@pytest.fixture
def check():
    """``check(path, source, select=None)`` → list of Finding.

    Dedents the snippet and runs either the full rule set or the
    ``--select``-style comma list given in ``select``.
    """

    def _check(path, source, select=None):
        rules = select_rules(select) if select else ALL_RULES
        return analyze_source(path, textwrap.dedent(source), rules)

    return _check


@pytest.fixture
def project_check():
    """``project_check(files, select=None)`` → list of Finding.

    ``files`` maps virtual paths to snippets (dedented); the whole set
    becomes one ProjectIndex and the selected whole-program rules run
    over it.
    """

    def _check(files, select=None):
        project_rules = select_project_rules(select)
        return analyze_project_source(
            {path: textwrap.dedent(src) for path, src in files.items()},
            project_rules,
        )

    return _check


@pytest.fixture
def rule_ids(check):
    """``rule_ids(path, source, select=None)`` → sorted list of rule ids."""

    def _ids(path, source, select=None):
        return sorted({f.rule for f in check(path, source, select)})

    return _ids
