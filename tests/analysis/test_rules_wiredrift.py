"""WIRE002: protocol dataclass vs user-site schema drift, with FP guards."""

PROTOCOL = "src/repro/serve/protocol.py"
CLIENT = "src/repro/serve/client.py"

PROTOCOL_OK = """
    from dataclasses import dataclass
    from typing import Any, Mapping

    @dataclass(frozen=True)
    class Req:
        benchmark: str
        seeds: int = 1

        def to_wire(self) -> dict[str, Any]:
            return {"benchmark": self.benchmark, "seeds": self.seeds}

        @classmethod
        def from_wire(cls, data: Mapping[str, Any]) -> "Req":
            known = {"benchmark", "seeds"}
            return cls(**{k: v for k, v in data.items() if k in known})
"""


def wire002(project_check, files):
    return [f for f in project_check(files, select="WIRE002")]


class TestSerializerDrift:
    def test_to_wire_key_drift(self, project_check):
        findings = wire002(project_check, {
            PROTOCOL: """
                from dataclasses import dataclass
                from typing import Any

                @dataclass(frozen=True)
                class Req:
                    benchmark: str
                    seeds: int = 1

                    def to_wire(self) -> dict[str, Any]:
                        return {"benchmark": self.benchmark, "seedz": self.seeds}
            """,
        })
        (finding,) = findings
        assert "to_wire" in finding.message
        assert "missing: ['seeds']" in finding.message
        assert "extra: ['seedz']" in finding.message

    def test_from_wire_known_set_drift(self, project_check):
        findings = wire002(project_check, {
            PROTOCOL: """
                from dataclasses import dataclass
                from typing import Any, Mapping

                @dataclass(frozen=True)
                class Req:
                    benchmark: str
                    seeds: int = 1
                    tenant: str = "anon"

                    def to_wire(self) -> dict[str, Any]:
                        return {"benchmark": self.benchmark, "seeds": self.seeds,
                                "tenant": self.tenant}

                    @classmethod
                    def from_wire(cls, data: Mapping[str, Any]) -> "Req":
                        known = {"benchmark", "seeds"}
                        return cls(**{k: v for k, v in data.items() if k in known})
            """,
        })
        (finding,) = findings
        assert "from_wire" in finding.message
        assert "missing: ['tenant']" in finding.message

    def test_matching_serializers_are_clean(self, project_check):
        assert wire002(project_check, {PROTOCOL: PROTOCOL_OK}) == []


class TestConstructionSites:
    def test_unknown_keyword_flagged(self, project_check):
        findings = wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def submit():
                    return Req(benchmark="b", tenant="x")
            """,
        })
        (finding,) = findings
        assert finding.path == CLIENT
        assert "unknown field `tenant`" in finding.message

    def test_missing_required_field_flagged(self, project_check):
        findings = wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def submit():
                    return Req(seeds=3)
            """,
        })
        (finding,) = findings
        assert "misses required protocol field(s) ['benchmark']" in finding.message

    def test_positional_and_defaulted_construction_is_clean(self, project_check):
        assert wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def submit():
                    return Req("b")
            """,
        }) == []

    def test_double_star_construction_is_opaque(self, project_check):
        assert wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def submit(payload):
                    return Req(**payload)
            """,
        }) == []

    def test_unrelated_dataclasses_not_checked(self, project_check):
        # same shape, but not in a serve protocol module
        assert wire002(project_check, {
            "src/repro/exp/spec.py": """
                from dataclasses import dataclass

                @dataclass
                class Spec:
                    name: str
            """,
            "src/repro/exp/use.py": """
                from repro.exp.spec import Spec

                def make():
                    return Spec(name="x", extra=1)
            """,
        }) == []


class TestAttributeAccess:
    def test_unknown_attribute_on_annotated_param(self, project_check):
        findings = wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def peek(req: Req):
                    return req.bench_mark
            """,
        })
        (finding,) = findings
        assert "`req.bench_mark`" in finding.message

    def test_fields_methods_and_dunders_allowed(self, project_check):
        assert wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def peek(req: Req):
                    req.to_wire()
                    req.__class__
                    return req.benchmark
            """,
        }) == []

    def test_rebound_parameter_not_checked(self, project_check):
        assert wire002(project_check, {
            PROTOCOL: PROTOCOL_OK,
            CLIENT: """
                from repro.serve.protocol import Req

                def peek(req: Req):
                    req = req.to_wire()
                    return req.get("benchmark")
            """,
        }) == []


class TestIdConvention:
    def test_parsed_prefix_nobody_builds(self, project_check):
        findings = wire002(project_check, {
            CLIENT: """
                def is_fed(job_id):
                    return job_id.startswith("fed-")
            """,
        })
        (finding,) = findings
        assert "id prefix `fed-`" in finding.message
        assert "no serve module builds it" in finding.message

    def test_build_and_parse_agree(self, project_check):
        assert wire002(project_check, {
            "src/repro/serve/router.py": """
                def make(n):
                    return f"fed-{n:05d}"
            """,
            CLIENT: """
                def is_fed(job_id):
                    return job_id.startswith("fed-")
            """,
        }) == []

    def test_inconsistent_format_specs_flagged(self, project_check):
        findings = wire002(project_check, {
            "src/repro/serve/router.py": """
                def make(n):
                    return f"fed-{n:05d}"
            """,
            "src/repro/serve/shard.py": """
                def make(n):
                    return f"fed-{n:03d}"
            """,
        })
        (finding,) = findings
        assert "format spec" in finding.message

    def test_id_sites_outside_serve_ignored(self, project_check):
        assert wire002(project_check, {
            "src/repro/exp/tags.py": """
                def parse(tag):
                    return tag.startswith("run-")
            """,
        }) == []
