"""Tests for the persistent content-addressed run cache."""

import json

import numpy as np
import pytest

from repro.counters.metrics import TaskloopCounters
from repro.exp.cache import (
    SCHEMA_VERSION,
    ResultCache,
    decode_run,
    default_cache_dir,
    encode_run,
    run_key,
    run_to_json,
    topology_fingerprint,
)
from repro.exp.runner import RunSpec, default_noise, execute_spec
from repro.interference.noise import NoiseParams
from repro.interference.timeline import AsymmetrySpec
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import AppRunResult, TaskloopResult
from repro.topology.presets import single_node, tiny_two_node


def synthetic_run(seed: int = 7) -> AppRunResult:
    """A hand-built run exercising every serialised field, NaN included."""
    ledger = OverheadLedger()
    ledger.charge("task_create", 1.25e-6, count=5)
    ledger.charge("steal_remote", 2.5e-6, count=1)
    loop = TaskloopResult(
        uid="app.loop",
        name="loop",
        elapsed=0.123456789012345,
        num_threads=4,
        node_mask_bits=0b11,
        steal_policy="hier",
        overhead=ledger,
        node_perf=np.array([1.5e9, float("nan")]),
        node_busy=np.array([0.25, 0.0]),
        tasks_executed=32,
        steals_local=3,
        steals_remote=1,
        counters=TaskloopCounters(
            uid="app.loop", elapsed=0.1, sat_time_integral=0.05, peak_saturation=1.2,
            bytes_total=1e9, bytes_remote=2e8, busy_time=0.4, idle_time=0.1,
        ),
    )
    return AppRunResult(
        app_name="app", scheduler="ilan", seed=seed,
        total_time=0.987654321098765, taskloops=[loop],
    )


def real_run() -> AppRunResult:
    spec = RunSpec(
        benchmark="matmul", scheduler="ilan", seed=11, timesteps=2,
        noise=default_noise(), topology=tiny_two_node(),
    )
    return execute_spec(spec)


BASE_KEY_KWARGS = dict(
    benchmark="matmul",
    scheduler="ilan",
    seed=3,
    timesteps=5,
    noise=default_noise(),
    topology=tiny_two_node(),
)


class TestRunKey:
    def test_deterministic(self):
        assert run_key(**BASE_KEY_KWARGS) == run_key(**BASE_KEY_KWARGS)

    @pytest.mark.parametrize(
        "change",
        [
            {"benchmark": "cg"},
            {"scheduler": "baseline"},
            {"seed": 4},
            {"timesteps": 6},
            {"timesteps": None},
            {"noise": None},
            {"noise": NoiseParams(mean_interval=0.01)},
            {"topology": single_node(4)},
            {"scheduler_params": {"granularity": 4}},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert run_key(**{**BASE_KEY_KWARGS, **change}) != run_key(**BASE_KEY_KWARGS)

    def test_accepts_precomputed_fingerprint(self):
        fp = topology_fingerprint(tiny_two_node())
        assert run_key(**{**BASE_KEY_KWARGS, "topology": fp}) == run_key(**BASE_KEY_KWARGS)


class TestAsymRunKey:
    """The asymmetry axis enters the cache key only when non-default."""

    def _spec(self, **kw):
        return RunSpec(
            benchmark="matmul", scheduler="ilan", seed=3, timesteps=2,
            noise=None, topology=tiny_two_node(), **kw,
        )

    def test_default_keeps_pre_asymmetry_key(self):
        """Back-compat: caches written before the asymmetry axis existed
        stay valid — an absent or disabled spec leaves the key unchanged."""
        base = self._spec().key()
        assert self._spec(asym=None, asym_seed=None).key() == base
        assert self._spec(asym=AsymmetrySpec()).key() == base

    def test_enabled_spec_changes_key(self):
        base = self._spec().key()
        asym = self._spec(asym=AsymmetrySpec(dvfs_interval=0.2)).key()
        assert asym != base

    def test_different_specs_different_keys(self):
        a = self._spec(asym=AsymmetrySpec(dvfs_interval=0.2)).key()
        b = self._spec(asym=AsymmetrySpec(dvfs_interval=0.3)).key()
        assert a != b

    def test_spelling_invariant(self):
        """Two parse spellings of the same timeline share one cache entry."""
        a = self._spec(asym=AsymmetrySpec.parse("dvfs_interval=0.200")).key()
        b = self._spec(asym=AsymmetrySpec.parse("dvfs_interval=0.2")).key()
        assert a == b

    def test_asym_seed_changes_key_only_when_set(self):
        base = self._spec().key()
        assert self._spec(asym_seed=None).key() == base
        assert self._spec(asym_seed=7).key() != base
        assert self._spec(asym_seed=7).key() != self._spec(asym_seed=8).key()


class TestTopologyFingerprint:
    def test_name_excluded(self, tiny):
        import dataclasses

        renamed = dataclasses.replace(tiny, name="other-name")
        assert topology_fingerprint(renamed) == topology_fingerprint(tiny)

    def test_structure_included(self, tiny, uma):
        assert topology_fingerprint(tiny) != topology_fingerprint(uma)


class TestRunCodec:
    @pytest.mark.parametrize("run", [synthetic_run(), real_run()],
                             ids=["synthetic", "simulated"])
    def test_lossless_roundtrip(self, run):
        decoded = decode_run(encode_run(run))
        assert run_to_json(decoded) == run_to_json(run)
        assert decoded.seed == run.seed
        assert decoded.total_time == run.total_time
        assert len(decoded.taskloops) == len(run.taskloops)
        a, b = run.taskloops[0], decoded.taskloops[0]
        assert np.array_equal(a.node_perf, b.node_perf, equal_nan=True)
        assert a.overhead.total == b.overhead.total
        assert a.overhead.counts == b.overhead.counts

    def test_none_counters_roundtrip(self):
        run = synthetic_run()
        run.taskloops[0].counters = None
        decoded = decode_run(encode_run(run))
        assert decoded.taskloops[0].counters is None


class TestResultCache:
    def test_miss_then_hit(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        assert tmp_cache.get(key) is None
        run = synthetic_run()
        tmp_cache.put(key, run)
        got = tmp_cache.get(key)
        assert got is not None
        assert run_to_json(got) == run_to_json(run)
        assert tmp_cache.stats.misses == 1
        assert tmp_cache.stats.hits == 1
        assert tmp_cache.stats.stores == 1

    def test_contains_len_keys_clear(self, tmp_cache):
        keys = [run_key(**{**BASE_KEY_KWARGS, "seed": s}) for s in range(3)]
        for k in keys:
            tmp_cache.put(k, synthetic_run())
        assert len(tmp_cache) == 3
        assert all(k in tmp_cache for k in keys)
        assert sorted(tmp_cache.keys()) == sorted(keys)
        assert tmp_cache.clear() == 3
        assert len(tmp_cache) == 0

    def test_corrupt_entry_is_miss_and_removed(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        path = tmp_cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"schema": %d, "key": "%s", "run": {"app_na' % (SCHEMA_VERSION, key))
        assert tmp_cache.get(key) is None
        assert not path.exists()
        assert tmp_cache.stats.invalidated == 1
        # the slot is reusable afterwards
        tmp_cache.put(key, synthetic_run())
        assert tmp_cache.get(key) is not None

    def test_stale_schema_is_miss(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        tmp_cache.put(key, synthetic_run())
        path = tmp_cache.path_for(key)
        header_raw, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_raw)
        header["schema"] = SCHEMA_VERSION - 1
        stale = json.dumps(header, sort_keys=True, separators=(",", ":"))
        path.write_bytes(stale.encode() + b"\n" + payload)
        assert tmp_cache.get(key) is None
        assert not path.exists()

    def test_key_mismatch_is_miss(self, tmp_cache):
        """An entry copied to the wrong address must not be served."""
        key_a = run_key(**BASE_KEY_KWARGS)
        key_b = run_key(**{**BASE_KEY_KWARGS, "seed": 99})
        tmp_cache.put(key_a, synthetic_run())
        path_b = tmp_cache.path_for(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(tmp_cache.path_for(key_a).read_bytes())
        assert tmp_cache.get(key_b) is None

    def test_put_leaves_no_temp_files(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        tmp_cache.put(key, synthetic_run())
        leftovers = [p for p in tmp_cache.root.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_garbage_bytes_recovered(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        path = tmp_cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff not json at all")
        assert tmp_cache.get(key) is None
        tmp_cache.put(key, synthetic_run())
        assert tmp_cache.get(key) is not None


class TestQuarantine:
    """Verification failures move entries aside instead of deleting them."""

    def _poison(self, cache, key):
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(raw))
        return path

    def test_checksum_mismatch_is_quarantined_not_served(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        tmp_cache.put(key, synthetic_run())
        path = self._poison(tmp_cache, key)
        assert tmp_cache.get(key) is None
        assert not path.exists()
        assert tmp_cache.stats.quarantined == 1
        assert tmp_cache.stats.invalidated == 1
        assert len(tmp_cache.quarantined_files()) == 1

    def test_quarantined_entry_is_recomputable(self, tmp_cache):
        """After quarantine, the slot accepts a fresh identical entry."""
        key = run_key(**BASE_KEY_KWARGS)
        run = synthetic_run()
        tmp_cache.put(key, run)
        self._poison(tmp_cache, key)
        assert tmp_cache.get(key) is None
        tmp_cache.put(key, run)
        got = tmp_cache.get(key)
        assert got is not None
        assert run_to_json(got) == run_to_json(run)
        # the forensic copy survives the recompute
        assert len(tmp_cache.quarantined_files()) == 1

    def test_quarantine_names_never_collide(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        for _ in range(3):
            tmp_cache.put(key, synthetic_run())
            self._poison(tmp_cache, key)
            assert tmp_cache.get(key) is None
        assert len(tmp_cache.quarantined_files()) == 3

    def test_quarantine_invisible_to_keys_and_len(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        tmp_cache.put(key, synthetic_run())
        self._poison(tmp_cache, key)
        tmp_cache.get(key)
        assert list(tmp_cache.keys()) == []
        assert len(tmp_cache) == 0
        assert key not in tmp_cache

    def test_truncation_is_quarantined(self, tmp_cache):
        key = run_key(**BASE_KEY_KWARGS)
        tmp_cache.put(key, synthetic_run())
        path = tmp_cache.path_for(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert tmp_cache.get(key) is None
        assert len(tmp_cache.quarantined_files()) == 1


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "runs"
