"""Unit tests for the figure/table generators and their rendering."""

import pytest

from repro.exp.figures import (
    average_speedup,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
)
from repro.exp.report import (
    render_figure6,
    render_overheads,
    render_speedups,
    render_threads,
    render_variability,
)
from repro.exp.runner import ExperimentConfig, Runner

BENCHES = ["matmul", "cg"]


@pytest.fixture(scope="module")
def runner(zen4_module):
    return Runner(ExperimentConfig(seeds=2, timesteps=4, with_noise=False), topology=zen4_module)


@pytest.fixture(scope="module")
def zen4_module():
    from repro.topology.presets import tiny_two_node

    return tiny_two_node()


class TestFigure2:
    def test_rows(self, runner):
        rows = figure2(runner, BENCHES)
        assert [r.benchmark for r in rows] == BENCHES
        for r in rows:
            assert r.scheduler == "ilan"
            assert r.baseline_mean > 0 and r.sched_mean > 0
            assert r.speedup == pytest.approx(r.baseline_mean / r.sched_mean)

    def test_render(self, runner):
        text = render_speedups("Figure 2", figure2(runner, BENCHES))
        assert "matmul" in text and "geo-mean" in text


class TestFigure3:
    def test_rows(self, runner):
        rows = figure3(runner, BENCHES)
        for r in rows:
            assert 1 <= r.avg_threads <= r.max_threads

    def test_render(self, runner):
        assert "avg threads" in render_threads("Figure 3", figure3(runner, BENCHES))


class TestFigure4:
    def test_uses_nomold(self, runner):
        rows = figure4(runner, BENCHES)
        assert all(r.scheduler == "ilan-nomold" for r in rows)


class TestFigure5:
    def test_rows(self, runner):
        rows = figure5(runner, BENCHES)
        for r in rows:
            assert r.baseline_overhead > 0
            assert r.ilan_overhead > 0
            assert r.normalized == pytest.approx(r.ilan_overhead / r.baseline_overhead)

    def test_render(self, runner):
        text = render_overheads("Figure 5", figure5(runner, BENCHES))
        assert "normalized" in text


class TestFigure6:
    def test_both_schedulers(self, runner):
        rows = figure6(runner, BENCHES)
        assert set(rows) == {"ilan", "worksharing"}
        assert len(rows["worksharing"]) == 2

    def test_render(self, runner):
        text = render_figure6(figure6(runner, BENCHES))
        assert "worksharing" in text


class TestTable1:
    def test_rows(self, runner):
        rows = table1(runner, BENCHES)
        for r in rows:
            assert r.baseline_std >= 0
            assert r.ilan_std >= 0

    def test_render(self, runner):
        text = render_variability("Table 1", table1(runner, BENCHES))
        assert "ilan std" in text


def test_average_speedup_is_geomean(runner):
    rows = figure2(runner, BENCHES)
    expected = 1.0
    for r in rows:
        expected *= r.speedup
    expected = expected ** (1 / len(rows))
    assert average_speedup(rows) == pytest.approx(expected)
