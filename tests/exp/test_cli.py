"""Unit tests for the repro-exp command-line interface."""

import pytest

from repro.exp.cli import _build_parser, run_experiment
from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.presets import tiny_two_node


@pytest.fixture(scope="module")
def runner():
    return Runner(
        ExperimentConfig(seeds=2, timesteps=3, with_noise=False), topology=tiny_two_node()
    )


class TestParser:
    def test_experiment_choices(self):
        parser = _build_parser()
        args = parser.parse_args(["fig2", "--seeds", "3"])
        assert args.experiment == "fig2"
        assert args.seeds == 3

    def test_benchmark_subset(self):
        args = _build_parser().parse_args(["table1", "--benchmarks", "cg", "sp"])
        assert args.benchmarks == ["cg", "sp"]

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fig9"])

    def test_no_noise_flag(self):
        args = _build_parser().parse_args(["fig2", "--no-noise"])
        assert args.no_noise

    def test_journal_with_no_cache_is_refused(self, tmp_path):
        """The journal's commit records promise cache persistence, so the
        combination is rejected up front — before the file is created."""
        from repro.exp import cli as cli_mod

        wal = tmp_path / "j.wal"
        with pytest.raises(SystemExit, match="require the run cache"):
            cli_mod.main(["fig2", "--no-cache", "--journal", str(wal)])
        assert not wal.exists()


class TestRunExperiment:
    @pytest.mark.parametrize("name", ["fig2", "fig3", "fig4", "fig5", "fig6", "table1"])
    def test_each_experiment_renders(self, runner, name):
        text = run_experiment(name, runner, ["matmul"])
        assert "matmul" in text

    def test_unknown_raises(self, runner):
        with pytest.raises(ValueError):
            run_experiment("fig9", runner, None)


class TestSaveOption:
    def test_save_writes_json(self, tmp_path, monkeypatch):
        from repro.exp import cli as cli_mod
        from repro.exp.persistence import load_results

        out = tmp_path / "cells.json"
        monkeypatch.setenv("REPRO_SEEDS", "1")
        monkeypatch.setenv("REPRO_ITERS", "2")
        # patch the default topology to the tiny machine to keep this fast
        import repro.exp.runner as runner_mod

        monkeypatch.setattr(runner_mod, "zen4_9354", tiny_two_node)
        rc = cli_mod.main(["fig2", "--benchmarks", "matmul", "--no-noise",
                           "--save", str(out)])
        assert rc == 0
        payload = load_results(out)
        assert payload["cells"]


class TestMachineOption:
    def test_presets_resolve(self):
        from repro.exp.cli import _resolve_machine

        assert _resolve_machine("zen4").num_cores == 64
        assert _resolve_machine("tiny").num_cores == 4
        assert _resolve_machine("uma").num_nodes == 1

    def test_topology_file(self, tmp_path):
        from repro.exp.cli import _resolve_machine
        from repro.topology.hwloc import format_topology

        path = tmp_path / "m.topo"
        path.write_text(format_topology(tiny_two_node()))
        assert _resolve_machine(str(path)).num_cores == 4

    def test_unknown_machine_exits(self):
        from repro.exp.cli import _resolve_machine

        with pytest.raises(SystemExit):
            _resolve_machine("cray-1")

    def test_machine_flag_end_to_end(self, monkeypatch, capsys):
        from repro.exp import cli as cli_mod

        monkeypatch.setenv("REPRO_SEEDS", "1")
        monkeypatch.setenv("REPRO_ITERS", "2")
        rc = cli_mod.main(["fig2", "--benchmarks", "matmul", "--no-noise",
                           "--machine", "tiny"])
        assert rc == 0
        assert "matmul" in capsys.readouterr().out
