"""Unit tests for the experiment runner."""

import pytest

from repro.errors import ExperimentError
from repro.exp.runner import (
    CellResult,
    ExperimentConfig,
    Runner,
    default_noise,
    derive_run_seed,
)


@pytest.fixture
def runner(tiny):
    return Runner(ExperimentConfig(seeds=2, timesteps=2, with_noise=False), topology=tiny)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.seeds == 30
        assert cfg.with_noise
        assert cfg.jobs == 1
        assert cfg.cache_dir is None

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "5")
        monkeypatch.setenv("REPRO_ITERS", "10")
        cfg = ExperimentConfig.from_env()
        assert cfg.seeds == 5
        assert cfg.timesteps == 10

    def test_full_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "5")
        monkeypatch.setenv("REPRO_FULL", "1")
        cfg = ExperimentConfig.from_env()
        assert cfg.seeds == 30
        assert cfg.timesteps is None

    def test_default_noise_params(self):
        noise = default_noise()
        assert noise.enabled
        assert 0 < noise.slow_factor < 1


class TestDerivedSeeds:
    def test_stable(self):
        assert derive_run_seed("matmul", "baseline", 0) == derive_run_seed(
            "matmul", "baseline", 0
        )

    def test_distinct_per_cell_and_index(self):
        seeds = {
            derive_run_seed(bench, sched, i)
            for bench in ("matmul", "cg")
            for sched in ("baseline", "ilan")
            for i in range(5)
        }
        assert len(seeds) == 2 * 2 * 5

    def test_negative_index_rejected(self):
        with pytest.raises(ExperimentError):
            derive_run_seed("matmul", "baseline", -1)


class TestRunner:
    def test_cell_runs_all_seeds(self, runner):
        cell = runner.cell("matmul", "baseline")
        assert isinstance(cell, CellResult)
        assert len(cell.runs) == 2
        assert cell.runs[0].seed == derive_run_seed("matmul", "baseline", 0)
        assert cell.runs[1].seed == derive_run_seed("matmul", "baseline", 1)

    def test_cell_cached(self, runner):
        a = runner.cell("matmul", "baseline")
        b = runner.cell("matmul", "baseline")
        assert a is b

    def test_clear_cache(self, runner):
        a = runner.cell("matmul", "baseline")
        runner.clear()
        assert runner.cell("matmul", "baseline") is not a

    def test_summaries(self, runner):
        cell = runner.cell("matmul", "baseline")
        s = cell.summary()
        assert s.n == 2 and s.mean > 0
        assert cell.overhead_summary().mean > 0
        assert cell.weighted_threads().mean == pytest.approx(4.0)

    def test_invalid_seed_count(self, tiny):
        r = Runner(ExperimentConfig(seeds=0, timesteps=1), topology=tiny)
        with pytest.raises(ExperimentError):
            r.cell("matmul", "baseline")

    def test_scheduler_dimension_distinct(self, runner):
        base = runner.cell("matmul", "baseline")
        ws = runner.cell("matmul", "worksharing")
        assert base.scheduler == "baseline" and ws.scheduler == "worksharing"
        assert base is not ws

    def test_cells_batch_matches_single(self, tiny):
        batch = Runner(
            ExperimentConfig(seeds=2, timesteps=2, with_noise=False), topology=tiny
        )
        single = Runner(
            ExperimentConfig(seeds=2, timesteps=2, with_noise=False), topology=tiny
        )
        pairs = [("matmul", "baseline"), ("matmul", "ilan")]
        got = batch.cells(pairs)
        for pair in pairs:
            assert got[pair].times == single.cell(*pair).times

    def test_prefetch_populates_all_cells(self, runner):
        runner.prefetch(["matmul"], ["baseline", "ilan"])
        cached = runner.cached_cells()
        assert ("matmul", "baseline") in cached
        assert ("matmul", "ilan") in cached

    def test_journal_without_cache_refused(self, tiny, tmp_path):
        """'committed' promises cache persistence; without a cache the
        journal would lie and resume would silently recompute."""
        from repro.exp.journal import CampaignJournal

        journal = CampaignJournal(tmp_path / "j.wal", fsync=False)
        with pytest.raises(ExperimentError, match="requires a result cache"):
            Runner(
                ExperimentConfig(seeds=1, timesteps=1),
                topology=tiny,
                journal=journal,
            )
