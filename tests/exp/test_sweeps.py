"""Unit tests for the parameter-sweep utilities."""

import pytest

from repro.core.scheduler import IlanScheduler
from repro.errors import ExperimentError
from repro.exp.sweeps import render_sweep, sweep
from repro.topology.presets import tiny_two_node
from repro.workloads.synthetic import make_synthetic


def factory():
    return make_synthetic(timesteps=2, num_tasks=8, total_iters=64, region_mib=16)


class TestSweep:
    def test_rows_per_variant(self, tiny):
        rows = sweep(
            app_factory=factory,
            schedulers={"base": "baseline", "ilan": IlanScheduler()},
            seeds=2,
            topology=tiny,
        )
        assert [r.label for r in rows] == ["base", "ilan"]
        for r in rows:
            assert r.time.n == 2
            assert r.time.mean > 0
            assert 1 <= r.threads_mean <= tiny.num_cores
            assert r.overhead_mean > 0

    def test_registry_names_accepted(self, tiny):
        rows = sweep(
            app_factory=factory,
            schedulers={"ws": "worksharing"},
            seeds=1,
            topology=tiny,
        )
        assert rows[0].time.n == 1

    def test_validation(self, tiny):
        with pytest.raises(ExperimentError):
            sweep(app_factory=factory, schedulers={}, topology=tiny)
        with pytest.raises(ExperimentError):
            sweep(app_factory=factory, schedulers={"a": "baseline"}, seeds=0, topology=tiny)

    def test_parallel_equals_sequential(self, tiny):
        kwargs = dict(
            app_factory=factory,
            schedulers={"base": "baseline", "ilan": IlanScheduler()},
            seeds=2,
            topology=tiny,
        )
        assert sweep(jobs=2, **kwargs) == sweep(jobs=1, **kwargs)

    def test_unpicklable_factory_falls_back_inline(self, tiny):
        rows = sweep(
            app_factory=lambda: factory(),  # lambdas cannot cross processes
            schedulers={"base": "baseline"},
            seeds=2,
            topology=tiny,
            jobs=4,
        )
        assert rows == sweep(
            app_factory=factory, schedulers={"base": "baseline"}, seeds=2,
            topology=tiny,
        )


class TestRender:
    def test_plain_table(self, tiny):
        rows = sweep(
            app_factory=factory, schedulers={"base": "baseline"}, seeds=1, topology=tiny
        )
        text = render_sweep("Sweep", rows)
        assert "variant" in text and "base" in text

    def test_normalised_table(self, tiny):
        rows = sweep(
            app_factory=factory,
            schedulers={"base": "baseline", "ilan": "ilan"},
            seeds=1,
            topology=tiny,
        )
        text = render_sweep("Sweep", rows, baseline="base")
        assert "speedup" in text
        assert "1.000" in text  # the baseline row against itself

    def test_unknown_baseline_rejected(self, tiny):
        rows = sweep(
            app_factory=factory, schedulers={"base": "baseline"}, seeds=1, topology=tiny
        )
        with pytest.raises(ExperimentError):
            render_sweep("Sweep", rows, baseline="nope")
