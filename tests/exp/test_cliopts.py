"""Tests for the shared campaign-CLI option vocabulary."""

import argparse

import pytest

from repro.exp.cache import default_cache_dir
from repro.exp.cliopts import (
    MACHINE_PRESETS,
    add_campaign_arguments,
    add_journal_arguments,
    add_machine_argument,
    config_from_args,
    journal_from_args,
    resolve_machine,
)
from repro.topology.hwloc import format_topology
from repro.topology.presets import tiny_two_node


def parse(argv, **machine_kwargs):
    parser = argparse.ArgumentParser()
    add_campaign_arguments(parser)
    add_machine_argument(parser, **machine_kwargs)
    return parser.parse_args(argv)


# ----------------------------------------------------------------------
# flag vocabulary
# ----------------------------------------------------------------------
def test_defaults_leave_everything_unset():
    args = parse([])
    assert args.seeds is None
    assert args.timesteps is None
    assert args.jobs is None
    assert args.cache_dir is None
    assert args.no_noise is False
    assert args.no_cache is False
    assert args.machine == "zen4"


def test_all_flags_parse():
    args = parse(["--seeds", "5", "--timesteps", "10", "--no-noise",
                  "--jobs", "3", "--cache-dir", "/tmp/c", "--machine", "tiny"])
    assert (args.seeds, args.timesteps, args.jobs) == (5, 10, 3)
    assert args.no_noise and args.cache_dir == "/tmp/c"
    assert args.machine == "tiny"


def test_machine_default_is_overridable():
    assert parse([], default="small").machine == "small"


def test_the_two_campaign_clis_share_the_vocabulary():
    """The dedup satellite: both entry points accept the same flags."""
    from repro.exp.cli import _build_parser as exp_parser
    from repro.serve.__main__ import _build_parser as serve_parser

    shared = ["--seeds", "2", "--timesteps", "3", "--no-noise", "--jobs", "2",
              "--no-cache", "--machine", "tiny"]
    exp_args = exp_parser().parse_args(["fig2", *shared])
    serve_args = serve_parser().parse_args(shared)
    for ns in (exp_args, serve_args):
        assert (ns.seeds, ns.timesteps, ns.jobs) == (2, 3, 2)
        assert ns.no_noise and ns.no_cache
        assert ns.machine == "tiny"


# ----------------------------------------------------------------------
# config merge
# ----------------------------------------------------------------------
def test_flags_win_over_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SEEDS", "7")
    monkeypatch.setenv("REPRO_JOBS", "9")
    cfg = config_from_args(parse(["--seeds", "2", "--jobs", "1"]))
    assert (cfg.seeds, cfg.jobs) == (2, 1)


def test_environment_fills_unset_flags(monkeypatch):
    monkeypatch.setenv("REPRO_SEEDS", "7")
    monkeypatch.setenv("REPRO_ITERS", "11")
    monkeypatch.setenv("REPRO_JOBS", "4")
    cfg = config_from_args(parse([]))
    assert (cfg.seeds, cfg.timesteps, cfg.jobs) == (7, 11, 4)


def test_seeds_default_overrides_environment_default(monkeypatch):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    cfg = config_from_args(parse([]), seeds_default=30)
    assert cfg.seeds == 30
    # ... but an explicit flag still wins
    assert config_from_args(parse(["--seeds", "2"]), seeds_default=30).seeds == 2


def test_noise_flag(monkeypatch):
    assert config_from_args(parse([])).with_noise is True
    assert config_from_args(parse(["--no-noise"])).with_noise is False


def test_cache_on_by_default_with_fallback_chain(tmp_path, monkeypatch):
    # explicit flag wins
    cfg = config_from_args(parse(["--cache-dir", str(tmp_path / "a")]))
    assert cfg.cache_dir == str(tmp_path / "a")
    # then the environment (set by the hermetic-cache fixture)
    env_cfg = config_from_args(parse([]))
    assert env_cfg.cache_dir is not None
    assert "repro-run-cache" in env_cfg.cache_dir
    # then the built-in default location
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert config_from_args(parse([])).cache_dir == str(default_cache_dir())


def test_no_cache_disables_the_cache_entirely(tmp_path):
    cfg = config_from_args(parse(["--no-cache", "--cache-dir", str(tmp_path)]))
    assert cfg.cache_dir is None


def test_asym_flags_parse_and_merge(monkeypatch):
    monkeypatch.delenv("REPRO_ASYM_SPEC", raising=False)
    monkeypatch.delenv("REPRO_ASYM_SEED", raising=False)
    # off by default
    cfg = config_from_args(parse([]))
    assert cfg.asym_spec is None and cfg.asym_seed is None
    # flags set both
    cfg = config_from_args(parse(["--asym-spec", "dvfs", "--asym-seed", "9"]))
    assert cfg.asym_spec == "dvfs" and cfg.asym_seed == 9
    # environment fills unset flags; explicit flags win
    monkeypatch.setenv("REPRO_ASYM_SPEC", "offline")
    monkeypatch.setenv("REPRO_ASYM_SEED", "3")
    assert config_from_args(parse([])).asym_spec == "offline"
    assert config_from_args(parse([])).asym_seed == 3
    cfg = config_from_args(parse(["--asym-spec", "mix"]))
    assert cfg.asym_spec == "mix" and cfg.asym_seed == 3


# ----------------------------------------------------------------------
# journal flags
# ----------------------------------------------------------------------
def parse_journal(argv):
    parser = argparse.ArgumentParser()
    add_journal_arguments(parser)
    return parser.parse_args(argv)


def test_malformed_crash_env_is_a_clean_cli_error(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_AFTER_JOURNAL_RECORDS", "abc")
    args = parse_journal(["--journal", str(tmp_path / "j.wal")])
    with pytest.raises(SystemExit, match="expected an integer"):
        journal_from_args(args)


def test_resume_of_missing_journal_is_a_clean_cli_error(tmp_path):
    args = parse_journal(["--resume", str(tmp_path / "nope.wal")])
    with pytest.raises(SystemExit, match="does not exist"):
        journal_from_args(args)


# ----------------------------------------------------------------------
# machine resolution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MACHINE_PRESETS))
def test_presets_resolve(name):
    topo = resolve_machine(name)
    assert topo.num_cores >= 1


def test_topology_file_resolves(tmp_path):
    path = tmp_path / "machine.topo"
    path.write_text(format_topology(tiny_two_node()))
    topo = resolve_machine(str(path))
    assert topo.num_nodes == 2
    assert topo.num_cores == tiny_two_node().num_cores


def test_unknown_machine_exits_with_a_helpful_message():
    with pytest.raises(SystemExit, match="not a preset"):
        resolve_machine("nonexistent-machine")
