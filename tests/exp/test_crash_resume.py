"""Crash/resume integration tests: SIGKILL a journaled campaign, resume.

Subprocess-based (the campaign really dies by SIGKILL mid-journal via
``REPRO_CRASH_AFTER_JOURNAL_RECORDS``), asserting the durability
contract end-to-end: the resumed run's saved results are byte-identical
to an uninterrupted golden run, committed cells are served from the
cache without re-journalling, and a corrupted cache entry is quarantined
and recomputed rather than trusted.  ``scripts/crash_smoke.py`` runs the
same scenario at more kill points; these tests keep it pinned in tier 1.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.exp.journal import CELL_COMMITTED, read_records, replay_state

pytestmark = pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")

CAMPAIGN = ["fig2", "--machine", "tiny", "--seeds", "2", "--timesteps", "2",
            "--benchmarks", "matmul", "cg"]
TIMEOUT = 120


def run_campaign(workdir, *, crash_after=None, resume=False):
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_CACHE_DIR=str(workdir / "cache"))
    env.pop("REPRO_CRASH_AFTER_JOURNAL_RECORDS", None)
    if crash_after is not None:
        env["REPRO_CRASH_AFTER_JOURNAL_RECORDS"] = str(crash_after)
    cmd = [sys.executable, "-m", "repro.exp.cli", *CAMPAIGN,
           "--resume" if resume else "--journal", str(workdir / "campaign.wal"),
           "--save", str(workdir / "results.json")]
    return subprocess.run(cmd, env=env, timeout=TIMEOUT, text=True,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One uninterrupted journaled campaign: (results bytes, record count)."""
    workdir = tmp_path_factory.mktemp("golden")
    proc = run_campaign(workdir)
    assert proc.returncode == 0, proc.stdout
    records = read_records(workdir / "campaign.wal")
    return (workdir / "results.json").read_bytes(), len(records)


def test_golden_journal_shape(golden, tmp_path):
    """Header first, every cell committed, completion checkpoint last."""
    workdir = tmp_path
    proc = run_campaign(workdir)
    assert proc.returncode == 0
    records = read_records(workdir / "campaign.wal")
    assert records[0]["type"] == "campaign"
    assert records[-1] == {"type": "checkpoint", "reason": "complete"}
    state = replay_state(records)
    assert set(state.cells.values()) == {CELL_COMMITTED}
    assert len(state.cells) == 4  # 2 benchmarks x 2 schedulers


@pytest.mark.parametrize("crash_after", [3, 7])
def test_sigkill_then_resume_is_byte_identical(golden, tmp_path, crash_after):
    golden_bytes, n_records = golden
    assert crash_after < n_records
    crashed = run_campaign(tmp_path, crash_after=crash_after)
    assert crashed.returncode == -signal.SIGKILL
    # exactly the durable records survive; the journal replays cleanly
    assert len(read_records(tmp_path / "campaign.wal")) == crash_after

    resumed = run_campaign(tmp_path, resume=True)
    assert resumed.returncode == 0, resumed.stdout
    assert (tmp_path / "results.json").read_bytes() == golden_bytes
    # no quarantined cache entries: a clean crash corrupts nothing
    assert not (tmp_path / "cache" / "quarantine").exists()


def test_resume_after_commit_skips_recompute(golden, tmp_path):
    """Crashing after the first commit: the resume reports cache hits and
    appends no duplicate transitions for the committed cell."""
    golden_bytes, _ = golden
    crashed = run_campaign(tmp_path, crash_after=7)  # past first commit
    assert crashed.returncode == -signal.SIGKILL
    committed = replay_state(read_records(tmp_path / "campaign.wal")).committed_cells()
    assert committed  # at least one cell committed before the kill

    resumed = run_campaign(tmp_path, resume=True)
    assert resumed.returncode == 0, resumed.stdout
    assert "resuming from" in resumed.stdout
    records = read_records(tmp_path / "campaign.wal")
    for cell in committed:
        transitions = [r for r in records if r.get("type") == "cell"
                       and (r["benchmark"], r["scheduler"]) == cell]
        states = [r["state"] for r in transitions]
        assert len(states) == len(set(states)), (
            f"duplicate transitions journalled for committed cell {cell}")
    assert (tmp_path / "results.json").read_bytes() == golden_bytes


def test_corrupted_cache_entry_is_quarantined_and_recomputed(golden, tmp_path):
    golden_bytes, _ = golden
    crashed = run_campaign(tmp_path, crash_after=7)
    assert crashed.returncode == -signal.SIGKILL
    entries = sorted((tmp_path / "cache").glob("??/*.json"))
    assert entries, "crashed run left no cache entries"
    raw = bytearray(entries[0].read_bytes())
    raw[-10] ^= 0xFF
    entries[0].write_bytes(bytes(raw))

    resumed = run_campaign(tmp_path, resume=True)
    assert resumed.returncode == 0, resumed.stdout
    assert (tmp_path / "results.json").read_bytes() == golden_bytes
    quarantine = tmp_path / "cache" / "quarantine"
    assert len(list(quarantine.iterdir())) == 1


def test_resume_with_wrong_config_is_refused(golden, tmp_path):
    proc = run_campaign(tmp_path, crash_after=3)
    assert proc.returncode == -signal.SIGKILL
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_CACHE_DIR=str(tmp_path / "cache"))
    cmd = [sys.executable, "-m", "repro.exp.cli", "fig2", "--machine", "tiny",
           "--seeds", "3", "--timesteps", "2", "--benchmarks", "matmul", "cg",
           "--resume", str(tmp_path / "campaign.wal")]
    mismatched = subprocess.run(cmd, env=env, timeout=TIMEOUT, text=True,
                                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    assert mismatched.returncode != 0
    assert "differently-configured" in mismatched.stdout


def test_resume_of_missing_journal_is_refused(tmp_path):
    env = dict(os.environ, PYTHONPATH="src")
    cmd = [sys.executable, "-m", "repro.exp.cli", *CAMPAIGN,
           "--resume", str(tmp_path / "nope.wal")]
    proc = subprocess.run(cmd, env=env, timeout=TIMEOUT, text=True,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    assert proc.returncode != 0
    assert "does not exist" in proc.stdout
