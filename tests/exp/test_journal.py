"""Unit tests for the campaign write-ahead journal.

Framing (CRC per line), torn-tail tolerance vs mid-file corruption, the
monotone cell state machine, conditional transition appends on resume,
and configuration pinning.  The crash *process* semantics live in
``tests/exp/test_crash_resume.py``; here everything is in-process.
"""

import signal

import pytest

from repro.errors import JournalError
from repro.exp.journal import (
    CELL_COMMITTED,
    CELL_PLANNED,
    CELL_RUNNING,
    CampaignJournal,
    Journal,
    JournalState,
    read_records,
    replay_state,
)

HEADER = dict(topology_fp="fp", seeds=2, timesteps=3, with_noise=True)


def make_journal(path, **kwargs):
    kwargs.setdefault("fsync", False)  # keep the unit tests off the disk's throat
    return CampaignJournal(path, **kwargs)


class TestFraming:
    def test_roundtrip_preserves_records_in_order(self, tmp_path):
        path = tmp_path / "j.wal"
        records = [{"type": "checkpoint", "reason": f"r{i}"} for i in range(5)]
        with Journal(path, fsync=False) as j:
            for r in records:
                j.append(r)
        assert read_records(path) == records

    def test_empty_and_missing_files(self, tmp_path):
        path = tmp_path / "j.wal"
        with pytest.raises(FileNotFoundError):
            read_records(path)
        path.write_bytes(b"")
        assert read_records(path) == []

    def test_torn_tail_without_newline_dropped(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "a"})
            j.append({"type": "checkpoint", "reason": "b"})
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # tear the final record mid-payload
        assert [r["reason"] for r in read_records(path)] == ["a"]

    def test_torn_tail_with_newline_dropped(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "a"})
        # a CRC-broken final line that did get its newline written
        raw = path.read_bytes() + b"deadbeef {broken\n"
        path.write_bytes(raw)
        assert [r["reason"] for r in read_records(path)] == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "a"})
            j.append({"type": "checkpoint", "reason": "b"})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"00000000 " + lines[0][9:]  # break record 1's CRC
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="not a torn tail"):
            read_records(path)

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        """The reviewer's crash shape: a torn tail must not have the next
        append glued onto it — reopening truncates to the last intact
        record boundary, so later replays never see mid-file damage."""
        path = tmp_path / "j.wal"
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "a"})
            j.append({"type": "checkpoint", "reason": "b"})
        path.write_bytes(path.read_bytes()[:-7])  # tear the final record
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "c"})
            j.append({"type": "checkpoint", "reason": "d"})
        # no torn bytes survive: every record replays, none is dropped
        assert [r["reason"] for r in read_records(path)] == ["a", "c", "d"]

    def test_reopen_truncates_newline_terminated_damage(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "a"})
        # a CRC-broken final line that did get its newline written
        path.write_bytes(path.read_bytes() + b"deadbeef {broken\n")
        with Journal(path, fsync=False) as j:
            j.append({"type": "checkpoint", "reason": "b"})
        assert [r["reason"] for r in read_records(path)] == ["a", "b"]

    def test_reopen_via_campaign_journal_heals_torn_tail(self, tmp_path):
        """End-to-end resume shape: CampaignJournal over a torn file must
        append records a *second* resume can still replay."""
        path = tmp_path / "j.wal"
        with make_journal(path) as j:
            j.begin(**HEADER)
            j.cell_planned("cg", "ilan", keys=["k1"])
        path.write_bytes(path.read_bytes()[:-5])  # tear the planned record
        with make_journal(path) as j:
            j.begin(**HEADER)
            j.cell_planned("cg", "ilan", keys=["k1"])
            j.cell_running("cg", "ilan")
            j.cell_committed("cg", "ilan", keys=["k1"])
        with make_journal(path) as j:  # a second resume replays cleanly
            assert j.is_committed("cg", "ilan")

    def test_append_to_closed_journal_raises(self, tmp_path):
        j = Journal(tmp_path / "j.wal", fsync=False)
        j.close()
        with pytest.raises(JournalError, match="closed"):
            j.append({"type": "checkpoint", "reason": "late"})


class TestStateMachine:
    def apply_all(self, *records):
        state = JournalState()
        for r in records:
            state.apply(r)
        return state

    def cell(self, state, keys=None):
        r = {"type": "cell", "state": state, "benchmark": "cg", "scheduler": "ilan"}
        if keys is not None:
            r["keys"] = keys
        return r

    def test_transitions_advance_monotonically(self):
        state = self.apply_all(
            self.cell(CELL_PLANNED, keys=["k1"]),
            self.cell(CELL_RUNNING),
            self.cell(CELL_COMMITTED, keys=["k1"]),
        )
        assert state.state_of("cg", "ilan") == CELL_COMMITTED
        assert state.committed_cells() == {("cg", "ilan")}
        assert state.keys[("cg", "ilan")] == ("k1",)

    def test_stale_transition_never_regresses(self):
        state = self.apply_all(
            self.cell(CELL_COMMITTED, keys=["k1"]),
            self.cell(CELL_RUNNING),
            self.cell(CELL_PLANNED, keys=["k1"]),
        )
        assert state.state_of("cg", "ilan") == CELL_COMMITTED

    def test_unknown_state_and_type_raise(self):
        with pytest.raises(JournalError, match="unknown cell state"):
            self.apply_all(self.cell("paused"))
        with pytest.raises(JournalError, match="unknown journal record type"):
            self.apply_all({"type": "mystery"})

    def test_conflicting_headers_raise(self):
        state = JournalState()
        state.apply({"type": "campaign", "seeds": 2})
        state.apply({"type": "campaign", "seeds": 2})  # identical: fine
        with pytest.raises(JournalError, match="conflicting campaign headers"):
            state.apply({"type": "campaign", "seeds": 3})


class TestCampaignJournal:
    def test_resume_skips_already_journalled_transitions(self, tmp_path):
        path = tmp_path / "j.wal"
        with make_journal(path) as j:
            j.begin(**HEADER)
            j.cell_planned("cg", "ilan", keys=["k1"])
            j.cell_running("cg", "ilan")
            j.cell_committed("cg", "ilan", keys=["k1"])
        before = len(read_records(path))
        with make_journal(path) as j:
            j.begin(**HEADER)  # same config: verifies, appends nothing
            j.cell_planned("cg", "ilan", keys=["k1"])
            j.cell_running("cg", "ilan")
            j.cell_committed("cg", "ilan", keys=["k1"])
            assert j.is_committed("cg", "ilan")
        assert len(read_records(path)) == before

    def test_resume_with_other_config_refused(self, tmp_path):
        path = tmp_path / "j.wal"
        with make_journal(path) as j:
            j.begin(**HEADER)
        with make_journal(path) as j:
            with pytest.raises(JournalError, match="differently-configured"):
                j.begin(**{**HEADER, "seeds": 99})

    def test_checkpoint_records_appended(self, tmp_path):
        path = tmp_path / "j.wal"
        with make_journal(path) as j:
            j.begin(**HEADER)
            j.checkpoint("sigterm")
        state = replay_state(read_records(path))
        assert state.checkpoints == ["sigterm"]

    def test_crash_after_is_wired_through(self, tmp_path):
        """The seam SIGKILLs on the Nth append — assert via a fork so the
        test process survives its own journal."""
        import os

        path = tmp_path / "j.wal"
        pid = os.fork()
        if pid == 0:  # child: dies on the 2nd append
            with make_journal(path, crash_after=2) as j:
                j.begin(**HEADER)
                j.cell_planned("cg", "ilan", keys=["k1"])
                os._exit(0)  # pragma: no cover - never reached
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        assert len(read_records(path)) == 2
