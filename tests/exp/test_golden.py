"""Golden-trace regression: a committed campaign the Runner must reproduce.

The fixture pins a small fixed-seed campaign — 2 benchmarks x 3 schedulers
x 3 seeds on the tiny machine, noise on — down to every per-run execution
time at full float precision.  Any change anywhere in ``core/``, ``sim/``,
``runtime/`` or ``memory/`` that shifts a single simulated run fails this
test loudly; intentional behaviour changes regenerate the fixture with::

    PYTHONPATH=src python tests/exp/test_golden.py --write

and the resulting diff is reviewed like any other code change.
"""

import json
from pathlib import Path

from repro.exp.persistence import results_to_dict
from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.presets import tiny_two_node

FIXTURE = Path(__file__).parent / "fixtures" / "golden_campaign.json"

GOLDEN_BENCHMARKS = ["matmul", "cg"]
GOLDEN_SCHEDULERS = ["baseline", "ilan", "worksharing"]
GOLDEN_CONFIG = ExperimentConfig(seeds=3, timesteps=2, with_noise=True)


def golden_campaign() -> dict:
    """Recompute the pinned campaign from scratch."""
    runner = Runner(GOLDEN_CONFIG, topology=tiny_two_node())
    runner.prefetch(GOLDEN_BENCHMARKS, GOLDEN_SCHEDULERS)
    return results_to_dict(runner)


def canonical(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_runner_reproduces_golden_campaign():
    committed = json.loads(FIXTURE.read_text())
    recomputed = golden_campaign()
    assert canonical(recomputed) == canonical(committed), (
        "the simulator no longer reproduces the committed campaign — if the "
        "behaviour change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/exp/test_golden.py --write`"
    )


def test_golden_covers_declared_grid():
    committed = json.loads(FIXTURE.read_text())
    cells = {(c["benchmark"], c["scheduler"]) for c in committed["cells"]}
    assert cells == {
        (b, s) for b in GOLDEN_BENCHMARKS for s in GOLDEN_SCHEDULERS
    }
    assert all(c["runs"] == GOLDEN_CONFIG.seeds for c in committed["cells"])
    assert all(len(c["times"]) == GOLDEN_CONFIG.seeds for c in committed["cells"])


def test_golden_seeds_are_cell_derived():
    """The fixture must pin the derived per-cell seed streams, not 0..n."""
    from repro.exp.runner import derive_run_seed

    committed = json.loads(FIXTURE.read_text())
    for cell in committed["cells"]:
        expected = [
            derive_run_seed(cell["benchmark"], cell["scheduler"], i)
            for i in range(cell["runs"])
        ]
        assert cell["seeds"] == expected


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        sys.exit("refusing to overwrite the fixture without --write")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(canonical(golden_campaign()))
    print(f"wrote {FIXTURE}")
