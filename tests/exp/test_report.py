"""Unit tests for the text renderers (synthetic rows, no simulation)."""

import pytest

from repro.exp.figures import (
    OverheadRow,
    SpeedupRow,
    ThreadsRow,
    VariabilityRow,
    average_speedup,
)
from repro.exp.report import (
    render_figure6,
    render_overheads,
    render_speedups,
    render_threads,
    render_variability,
)


def srow(bench, speedup, sched="ilan"):
    return SpeedupRow(
        benchmark=bench,
        scheduler=sched,
        baseline_mean=1.0,
        baseline_std=0.01,
        sched_mean=1.0 / speedup,
        sched_std=0.01,
        speedup=speedup,
    )


class TestSpeedupRendering:
    def test_contains_all_rows_and_geomean(self):
        rows = [srow("cg", 1.08), srow("sp", 1.458)]
        text = render_speedups("My Figure", rows)
        assert text.startswith("My Figure")
        assert "cg" in text and "sp" in text
        assert "geo-mean" in text
        gm = average_speedup(rows)
        assert f"{gm:.3f}" in text

    def test_percent_column_sign(self):
        text = render_speedups("F", [srow("matmul", 0.98)])
        assert "-2.0" in text

    def test_speedup_row_percent_property(self):
        assert srow("x", 1.132).percent == pytest.approx(13.2)


class TestThreadsRendering:
    def test_rows_rendered(self):
        rows = [
            ThreadsRow(benchmark="cg", avg_threads=25.3, max_threads=64),
            ThreadsRow(benchmark="ft", avg_threads=64.0, max_threads=64),
        ]
        text = render_threads("Fig3", rows)
        assert "25.3" in text and "64.0" in text


class TestOverheadRendering:
    def test_counts_reductions(self):
        rows = [
            OverheadRow(benchmark="cg", baseline_overhead=0.010, ilan_overhead=0.005,
                        normalized=0.5),
            OverheadRow(benchmark="matmul", baseline_overhead=0.004, ilan_overhead=0.006,
                        normalized=1.5),
        ]
        text = render_overheads("Fig5", rows)
        assert "ILAN overhead lower in 1/2 benchmarks" in text
        assert "0.500" in text and "1.500" in text


class TestVariabilityRendering:
    def test_counts_reductions(self):
        rows = [
            VariabilityRow(benchmark="ft", baseline_std=0.0117, ilan_std=0.0037,
                           baseline_rel_std=0.01, ilan_rel_std=0.004),
            VariabilityRow(benchmark="bt", baseline_std=0.0133, ilan_std=0.0197,
                           baseline_rel_std=0.012, ilan_rel_std=0.018),
        ]
        text = render_variability("T1", rows)
        assert "ILAN variance lower in 1/2 benchmarks" in text
        assert "0.0037" in text


class TestFigure6Rendering:
    def test_both_columns(self):
        rows = {
            "ilan": [srow("cg", 1.08), srow("ft", 1.11)],
            "worksharing": [srow("cg", 0.89, "worksharing"), srow("ft", 1.19, "worksharing")],
        }
        text = render_figure6(rows)
        assert "worksharing" in text
        assert "0.890" in text
        assert "1.190" in text
        assert "geo-mean" in text
