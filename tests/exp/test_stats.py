"""Unit tests for experiment statistics."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.exp.stats import geo_mean, percent, speedup, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(np.std([1, 2, 3], ddof=1))
        assert s.min == 1.0 and s.max == 3.0

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_rel_std(self):
        s = summarize([1.0, 3.0])
        assert s.rel_std == pytest.approx(s.std / 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])


class TestSpeedup:
    def test_direction(self):
        assert speedup(2.0, 1.0) == 2.0  # scheduler twice as fast
        assert speedup(1.0, 2.0) == 0.5

    def test_validation(self):
        with pytest.raises(ExperimentError):
            speedup(0.0, 1.0)
        with pytest.raises(ExperimentError):
            speedup(1.0, -1.0)


class TestGeoMean:
    def test_value(self):
        assert geo_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geo_mean([3.0]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            geo_mean([])
        with pytest.raises(ExperimentError):
            geo_mean([1.0, 0.0])


def test_percent():
    assert percent(1.132) == pytest.approx(13.2)
    assert percent(0.98) == pytest.approx(-2.0)
