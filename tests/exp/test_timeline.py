"""Unit tests for the ASCII timeline renderer."""

import pytest

from repro.errors import ExperimentError
from repro.exp.timeline import render_node_utilisation, render_taskloop_timeline
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_synthetic


@pytest.fixture
def traced_run(tiny):
    app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=32)
    rt = OpenMPRuntime(tiny, scheduler="ilan", seed=0, trace=True)
    result = rt.run_application(app)
    return rt.last_ctx, result, app


class TestTimeline:
    def test_renders_all_cores(self, traced_run, tiny):
        ctx, result, app = traced_run
        text = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop")
        for core in tiny.core_ids():
            assert f"\n{core:>6} |" in text
        assert "legend" in text
        assert "node 0" in text and "node 1" in text

    def test_marks_present(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop")
        assert "#" in text or "s" in text

    def test_occurrence_selection(self, traced_run, tiny):
        ctx, _, _ = traced_run
        t0 = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=0)
        t1 = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=1)
        assert t0 != t1

    def test_unknown_uid_rejected(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "nope")

    def test_occurrence_out_of_range(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=9)

    def test_width_validation(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", width=4)


class TestUtilisation:
    def test_renders_every_node(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_node_utilisation(ctx.trace, tiny, "synthetic.loop")
        assert "node 0" in text and "node 1" in text
        assert "%" in text

    def test_fractions_bounded(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_node_utilisation(ctx.trace, tiny, "synthetic.loop")
        for line in text.splitlines()[1:]:
            pct = float(line.split("%")[0].split()[-1])
            assert 0.0 <= pct <= 100.5


class TestWindowTolerance:
    def test_boundary_task_survives_large_timestamps(self, tiny):
        # regression (DET003 audit): _tasks_in_window used an absolute
        # 1e-12 epsilon, so at start~1e6 a task whose start sits a few
        # ulps before the window start (accumulated-float noise,
        # ~1.2e-10 off) was silently dropped from the rendering
        import math

        from repro.sim.trace import TaskloopRecord, TaskRecord, Trace

        base = 1e6
        trace = Trace(enabled=True)
        trace.add_taskloop(
            TaskloopRecord(
                taskloop="tl", iteration=0, num_threads=1, node_mask_bits=1,
                steal_policy="local", start=base, end=base + 1.0, overhead=0.0,
            )
        )
        noisy_start = math.nextafter(base, 0.0)
        assert base - noisy_start > 1e-12  # beyond the old absolute epsilon
        trace.add_task(
            TaskRecord(
                taskloop="tl", chunk_index=0, core=0, node=0,
                start=noisy_start, end=base + 0.5, base_time=0.5, stolen=False,
            )
        )
        text = render_taskloop_timeline(trace, tiny, "tl")
        assert "1 tasks" in text
        assert "#" in text
