"""Unit tests for the ASCII timeline renderer."""

import pytest

from repro.errors import ExperimentError
from repro.exp.timeline import render_node_utilisation, render_taskloop_timeline
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_synthetic


@pytest.fixture
def traced_run(tiny):
    app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=32)
    rt = OpenMPRuntime(tiny, scheduler="ilan", seed=0, trace=True)
    result = rt.run_application(app)
    return rt.last_ctx, result, app


class TestTimeline:
    def test_renders_all_cores(self, traced_run, tiny):
        ctx, result, app = traced_run
        text = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop")
        for core in tiny.core_ids():
            assert f"\n{core:>6} |" in text
        assert "legend" in text
        assert "node 0" in text and "node 1" in text

    def test_marks_present(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop")
        assert "#" in text or "s" in text

    def test_occurrence_selection(self, traced_run, tiny):
        ctx, _, _ = traced_run
        t0 = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=0)
        t1 = render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=1)
        assert t0 != t1

    def test_unknown_uid_rejected(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "nope")

    def test_occurrence_out_of_range(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", occurrence=9)

    def test_width_validation(self, traced_run, tiny):
        ctx, _, _ = traced_run
        with pytest.raises(ExperimentError):
            render_taskloop_timeline(ctx.trace, tiny, "synthetic.loop", width=4)


class TestUtilisation:
    def test_renders_every_node(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_node_utilisation(ctx.trace, tiny, "synthetic.loop")
        assert "node 0" in text and "node 1" in text
        assert "%" in text

    def test_fractions_bounded(self, traced_run, tiny):
        ctx, _, _ = traced_run
        text = render_node_utilisation(ctx.trace, tiny, "synthetic.loop")
        for line in text.splitlines()[1:]:
            pct = float(line.split("%")[0].split()[-1])
            assert 0.0 <= pct <= 100.5
