"""Unit tests for result persistence."""

import pytest

from repro.errors import ExperimentError
from repro.exp.figures import SpeedupRow, ThreadsRow, figure2
from repro.exp.persistence import load_results, results_to_dict, rows_to_dicts, save_results
from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.presets import tiny_two_node


@pytest.fixture(scope="module")
def runner():
    r = Runner(ExperimentConfig(seeds=2, timesteps=3, with_noise=False), topology=tiny_two_node())
    r.cell("matmul", "baseline")
    r.cell("matmul", "ilan")
    return r


class TestRows:
    def test_roundtrip_speedup_rows(self, runner, tmp_path):
        rows = figure2(runner, ["matmul"])
        path = save_results(tmp_path / "fig2.json", rows)
        loaded = load_results(path)
        assert loaded == rows
        assert isinstance(loaded[0], SpeedupRow)

    def test_roundtrip_threads_rows(self, tmp_path):
        rows = [ThreadsRow(benchmark="cg", avg_threads=25.0, max_threads=64)]
        loaded = load_results(save_results(tmp_path / "t.json", rows))
        assert loaded == rows

    def test_non_dataclass_rejected(self):
        with pytest.raises(ExperimentError):
            rows_to_dicts([{"not": "a dataclass"}])

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rows": [{"__type__": "Mystery"}]}')
        with pytest.raises(ExperimentError):
            load_results(path)


class TestCellSummaries:
    def test_results_to_dict_shape(self, runner):
        payload = results_to_dict(runner)
        assert payload["config"]["seeds"] == 2
        assert "tiny-two-node" in payload["machine"]
        cells = payload["cells"]
        assert {(c["benchmark"], c["scheduler"]) for c in cells} >= {
            ("matmul", "baseline"),
            ("matmul", "ilan"),
        }
        for c in cells:
            assert c["time_mean"] > 0
            assert c["runs"] == 2

    def test_dict_roundtrip(self, runner, tmp_path):
        payload = results_to_dict(runner)
        loaded = load_results(save_results(tmp_path / "cells.json", payload))
        assert loaded == payload
