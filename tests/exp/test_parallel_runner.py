"""Determinism and cache-integration tests for the parallel runner.

The load-bearing claims locked down here:

* a campaign run with ``jobs=N`` is **byte-identical** to ``jobs=1``;
* a warm-cache rerun re-simulates **zero** runs and still produces
  byte-identical results;
* the in-memory cell memoisation, the disk cache, and the process pool
  compose without changing any result.
"""

import json

import pytest

from repro.exp.cache import ResultCache, run_to_json
from repro.exp.figures import figure2
from repro.exp.persistence import results_to_dict
from repro.exp.runner import ExperimentConfig, Runner

BENCHES = ["matmul", "cg"]
PAIRS = [(b, s) for b in BENCHES for s in ("baseline", "ilan")]
CFG = ExperimentConfig(seeds=2, timesteps=2, with_noise=True)


def campaign_fingerprint(runner: Runner) -> str:
    """Canonical text of every run of every cell (NaN-safe byte identity)."""
    parts = {
        f"{bench}/{sched}": [run_to_json(r) for r in cell.runs]
        for (bench, sched), cell in sorted(runner.cached_cells().items())
    }
    return json.dumps(parts, sort_keys=True)


@pytest.fixture
def make_runner(tiny):
    def _make(jobs: int = 1, cache: ResultCache | None = None) -> Runner:
        return Runner(CFG, topology=tiny, jobs=jobs, cache=cache)

    return _make


class TestParallelEqualsSequential:
    def test_campaign_byte_identical(self, make_runner):
        seq = make_runner(jobs=1)
        par = make_runner(jobs=2)
        seq.cells(PAIRS)
        par.cells(PAIRS)
        assert campaign_fingerprint(par) == campaign_fingerprint(seq)

    def test_figure2_rows_identical(self, make_runner):
        """The acceptance check: figure-2 summaries match run-for-run."""
        seq_rows = figure2(make_runner(jobs=1), BENCHES)
        par_rows = figure2(make_runner(jobs=2), BENCHES)
        assert par_rows == seq_rows

    def test_summary_payload_identical(self, make_runner):
        seq = make_runner(jobs=1)
        par = make_runner(jobs=2)
        seq.cells(PAIRS)
        par.cells(PAIRS)
        assert json.dumps(results_to_dict(par), sort_keys=True) == json.dumps(
            results_to_dict(seq), sort_keys=True
        )

    def test_execution_order_irrelevant(self, make_runner):
        """Cells computed one-by-one equal cells computed in one fan-out."""
        one_by_one = make_runner(jobs=1)
        for pair in PAIRS:
            one_by_one.cell(*pair)
        fanned = make_runner(jobs=2)
        fanned.cells(list(reversed(PAIRS)))
        assert campaign_fingerprint(fanned) == campaign_fingerprint(one_by_one)


class TestCacheIntegration:
    def test_cold_run_populates_cache(self, make_runner, tmp_cache):
        runner = make_runner(jobs=2, cache=tmp_cache)
        runner.cells(PAIRS)
        expected_runs = len(PAIRS) * CFG.seeds
        assert tmp_cache.stats.stores == expected_runs
        assert tmp_cache.stats.hits == 0
        assert len(tmp_cache) == expected_runs

    def test_warm_rerun_simulates_nothing(self, make_runner, tmp_cache):
        make_runner(jobs=2, cache=tmp_cache).cells(PAIRS)
        warm = make_runner(jobs=2, cache=ResultCache(tmp_cache.root))
        warm.cells(PAIRS)
        assert warm.cache.stats.misses == 0, "warm rerun must re-simulate zero runs"
        assert warm.cache.stats.stores == 0
        assert warm.cache.stats.hits == len(PAIRS) * CFG.seeds

    def test_warm_results_byte_identical(self, make_runner, tmp_cache):
        cold = make_runner(jobs=1, cache=tmp_cache)
        cold.cells(PAIRS)
        warm = make_runner(jobs=2, cache=ResultCache(tmp_cache.root))
        warm.cells(PAIRS)
        assert campaign_fingerprint(warm) == campaign_fingerprint(cold)

    def test_unrelated_config_does_not_hit(self, make_runner, tmp_cache):
        """Changing any configuration field must miss, not serve stale runs."""
        make_runner(cache=tmp_cache).cells(PAIRS)
        other_cfg = ExperimentConfig(seeds=2, timesteps=3, with_noise=True)
        other = Runner(other_cfg, topology=make_runner().topology,
                       cache=ResultCache(tmp_cache.root))
        other.cell("matmul", "baseline")
        assert other.cache.stats.hits == 0

    def test_growing_seed_count_reuses_prefix(self, tiny, tmp_cache):
        """Runs are cached individually: going 2 → 4 seeds reuses the 2."""
        Runner(CFG, topology=tiny, cache=tmp_cache).cell("matmul", "baseline")
        bigger = Runner(
            ExperimentConfig(seeds=4, timesteps=2, with_noise=True),
            topology=tiny,
            cache=ResultCache(tmp_cache.root),
        )
        bigger.cell("matmul", "baseline")
        assert bigger.cache.stats.hits == 2
        assert bigger.cache.stats.stores == 2

    def test_corrupt_entry_recomputed_transparently(self, make_runner, tmp_cache):
        cold = make_runner(cache=tmp_cache)
        cold.cells(PAIRS)
        fingerprint = campaign_fingerprint(cold)
        # truncate one entry on disk
        victim = next(iter(tmp_cache.keys()))
        path = tmp_cache.path_for(victim)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        warm = make_runner(jobs=2, cache=ResultCache(tmp_cache.root))
        warm.cells(PAIRS)
        assert campaign_fingerprint(warm) == fingerprint
        assert warm.cache.stats.misses == 1
        assert warm.cache.stats.stores == 1


class TestJobsPlumbing:
    def test_config_jobs_used_by_default(self, tiny):
        runner = Runner(
            ExperimentConfig(seeds=1, timesteps=1, with_noise=False, jobs=3),
            topology=tiny,
        )
        assert runner.jobs == 3

    def test_jobs_argument_overrides_config(self, tiny):
        runner = Runner(
            ExperimentConfig(seeds=1, timesteps=1, with_noise=False, jobs=3),
            topology=tiny,
            jobs=1,
        )
        assert runner.jobs == 1

    def test_jobs_floor_is_one(self, tiny):
        assert Runner(CFG, topology=tiny, jobs=0).jobs == 1

    def test_config_cache_dir_builds_cache(self, tiny, tmp_path):
        cache_dir = tmp_path / "from-config"
        runner = Runner(
            ExperimentConfig(seeds=1, timesteps=1, with_noise=False,
                             cache_dir=str(cache_dir)),
            topology=tiny,
        )
        assert runner.cache is not None
        runner.cell("matmul", "baseline")
        assert cache_dir.is_dir() and len(runner.cache) == 1
