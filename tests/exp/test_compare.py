"""Unit tests for the statistical comparison helpers."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.exp.compare import compare_cells, compare_samples, render_comparisons
from repro.exp.runner import CellResult
from repro.runtime.results import AppRunResult


def fake_cell(bench, sched, times):
    runs = [
        AppRunResult(app_name=bench, scheduler=sched, seed=i, total_time=t)
        for i, t in enumerate(times)
    ]
    return CellResult(benchmark=bench, scheduler=sched, runs=runs)


class TestCompareSamples:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        a = 1.0 + 0.01 * rng.standard_normal(30)
        b = 0.8 + 0.01 * rng.standard_normal(30)
        c = compare_samples(a, b, label="x")
        assert c.significant
        assert c.speedup == pytest.approx(1.25, rel=0.05)
        assert c.verdict == "B faster"

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        a = 1.0 + 0.05 * rng.standard_normal(40)
        b = 1.0 + 0.05 * rng.standard_normal(40)
        c = compare_samples(a, b)
        assert not c.significant
        assert c.verdict == "no significant difference"

    def test_slower_candidate(self):
        rng = np.random.default_rng(2)
        a = 1.0 + 0.01 * rng.standard_normal(30)
        b = 1.4 + 0.01 * rng.standard_normal(30)
        c = compare_samples(a, b)
        assert c.significant
        assert c.verdict == "B slower"

    def test_deterministic_samples(self):
        same = compare_samples([1.0, 1.0], [1.0, 1.0])
        assert not same.significant
        diff = compare_samples([1.0, 1.0], [0.5, 0.5])
        assert diff.significant

    def test_validation(self):
        with pytest.raises(ExperimentError):
            compare_samples([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            compare_samples([1.0, 2.0], [1.0, 2.0], alpha=2.0)


class TestCompareCells:
    def test_labels_and_result(self):
        a = fake_cell("cg", "baseline", [1.0, 1.02, 0.98, 1.01])
        b = fake_cell("cg", "ilan", [0.9, 0.91, 0.89, 0.9])
        c = compare_cells(a, b)
        assert "cg" in c.label and "ilan" in c.label
        assert c.speedup > 1.0

    def test_benchmark_mismatch_rejected(self):
        a = fake_cell("cg", "baseline", [1.0, 1.0])
        b = fake_cell("ft", "ilan", [1.0, 1.0])
        with pytest.raises(ExperimentError):
            compare_cells(a, b)


def test_render_comparisons():
    c = compare_samples([1.0, 1.1, 0.9, 1.0], [0.8, 0.82, 0.78, 0.8], label="demo")
    text = render_comparisons("Comparisons", [c])
    assert "demo" in text
    assert "speedup" in text
