"""Environment-knob handling: precedence and read-once semantics.

``ExperimentConfig.from_env`` is the single place the ``REPRO_*`` knobs
are read; a constructed config (and any :class:`Runner` built from it) is
immutable against later environment changes.
"""

import pytest

from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.presets import tiny_two_node


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for name in ("REPRO_SEEDS", "REPRO_ITERS", "REPRO_FULL", "REPRO_JOBS",
                 "REPRO_CACHE_DIR", "REPRO_ASYM_SPEC", "REPRO_ASYM_SEED"):
        monkeypatch.delenv(name, raising=False)


class TestDefaults:
    def test_paper_defaults_without_env(self):
        cfg = ExperimentConfig.from_env()
        assert cfg == ExperimentConfig(
            seeds=30, timesteps=None, with_noise=True, jobs=1, cache_dir=None
        )

    def test_default_seeds_parameter(self):
        """The bench suite's lighter default flows through ``from_env``."""
        assert ExperimentConfig.from_env(default_seeds=10).seeds == 10

    def test_env_seeds_beat_default_seeds_parameter(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "4")
        assert ExperimentConfig.from_env(default_seeds=10).seeds == 4


class TestPrecedence:
    def test_seeds_and_iters(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "7")
        monkeypatch.setenv("REPRO_ITERS", "12")
        cfg = ExperimentConfig.from_env()
        assert cfg.seeds == 7
        assert cfg.timesteps == 12

    def test_full_overrides_seeds_and_iters(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "3")
        monkeypatch.setenv("REPRO_ITERS", "2")
        monkeypatch.setenv("REPRO_FULL", "1")
        cfg = ExperimentConfig.from_env()
        assert cfg.seeds == 30
        assert cfg.timesteps is None

    def test_full_zero_is_not_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "3")
        monkeypatch.setenv("REPRO_FULL", "0")
        assert ExperimentConfig.from_env().seeds == 3

    def test_full_keeps_execution_knobs(self, monkeypatch):
        """REPRO_FULL controls scale; jobs/cache are orthogonal and survive."""
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_JOBS", "6")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        cfg = ExperimentConfig.from_env()
        assert cfg.seeds == 30
        assert cfg.jobs == 6
        assert cfg.cache_dir == "/tmp/somewhere"

    def test_jobs_and_cache_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        cfg = ExperimentConfig.from_env()
        assert cfg.jobs == 4
        assert cfg.cache_dir == "/tmp/elsewhere"

    def test_empty_cache_dir_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert ExperimentConfig.from_env().cache_dir is None


class TestReadOnce:
    def test_config_frozen_against_env_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "5")
        cfg = ExperimentConfig.from_env()
        monkeypatch.setenv("REPRO_SEEDS", "9")
        assert cfg.seeds == 5
        assert ExperimentConfig.from_env().seeds == 9

    def test_runner_captures_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "2")
        monkeypatch.setenv("REPRO_ITERS", "1")
        monkeypatch.setenv("REPRO_JOBS", "2")
        runner = Runner(topology=tiny_two_node())
        monkeypatch.setenv("REPRO_SEEDS", "30")
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_FULL", "1")
        assert runner.config.seeds == 2
        assert runner.config.timesteps == 1
        assert runner.jobs == 2
        cell = runner.cell("matmul", "baseline")
        assert len(cell.runs) == 2

    def test_specs_never_reread_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "3")
        runner = Runner(topology=tiny_two_node())
        monkeypatch.setenv("REPRO_SEEDS", "1")
        assert len(runner.specs("matmul", "baseline")) == 3


class TestAsymKnobs:
    def test_defaults_off(self):
        cfg = ExperimentConfig.from_env()
        assert cfg.asym_spec is None
        assert cfg.asym_seed is None
        assert cfg.parsed_asym() is None

    def test_env_spec_and_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASYM_SPEC", "dvfs:dvfs_low=0.5")
        monkeypatch.setenv("REPRO_ASYM_SEED", "7")
        cfg = ExperimentConfig.from_env()
        assert cfg.asym_spec == "dvfs:dvfs_low=0.5"
        assert cfg.asym_seed == 7
        spec = cfg.parsed_asym()
        assert spec is not None and spec.dvfs_low == 0.5

    def test_env_spec_survives_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_ASYM_SPEC", "offline")
        cfg = ExperimentConfig.from_env()
        assert cfg.asym_spec == "offline"

    def test_empty_spec_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASYM_SPEC", "")
        assert ExperimentConfig.from_env().asym_spec is None

    def test_bad_spec_fails_fast(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            ExperimentConfig(asym_spec="nosuchpreset")

    def test_specs_carry_the_parsed_asym(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "2")
        monkeypatch.setenv("REPRO_ITERS", "1")
        monkeypatch.setenv("REPRO_ASYM_SPEC", "dvfs")
        monkeypatch.setenv("REPRO_ASYM_SEED", "5")
        runner = Runner(topology=tiny_two_node())
        for spec in runner.specs("matmul", "baseline"):
            assert spec.asym is not None and spec.asym.enabled
            assert spec.asym_seed == 5
