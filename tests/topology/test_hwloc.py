"""Unit tests for the textual topology format."""

import pytest

from repro.errors import TopologyError
from repro.topology.hwloc import format_size, format_topology, parse_size, parse_topology
from repro.topology.machine import GIB, MIB


class TestSizes:
    @pytest.mark.parametrize(
        "text,expected",
        [("96G", 96 * GIB), ("32M", 32 * MIB), ("4096", 4096), ("1T", 1024 * GIB), ("1.5G", int(1.5 * GIB))],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(TopologyError):
            parse_size("lots")
        with pytest.raises(TopologyError):
            parse_size("12X")

    @pytest.mark.parametrize(
        "num,expected", [(96 * GIB, "96G"), (32 * MIB, "32M"), (1536, "1.5K" if False else "1536")]
    )
    def test_format(self, num, expected):
        assert format_size(num) == expected

    def test_roundtrip(self):
        for v in (1, 1024, 7 * MIB, 3 * GIB):
            assert parse_size(format_size(v)) == v


class TestRoundTrip:
    def test_zen4_roundtrip(self, zen4):
        text = format_topology(zen4)
        parsed = parse_topology(text)
        assert parsed.name == zen4.name
        assert parsed.num_sockets == zen4.num_sockets
        assert parsed.num_nodes == zen4.num_nodes
        assert parsed.num_ccds == zen4.num_ccds
        assert parsed.num_cores == zen4.num_cores
        for a, b in zip(parsed.nodes, zen4.nodes):
            assert a.core_ids == b.core_ids
            assert a.mem_bytes == b.mem_bytes
            assert a.mem_bandwidth == b.mem_bandwidth

    def test_tiny_roundtrip(self, tiny):
        assert format_topology(parse_topology(format_topology(tiny))) == format_topology(tiny)


class TestParse:
    def test_minimal(self):
        text = """
        machine mini
          socket 0
            node 0 mem=2G bw=4G
              ccd 0 l3=16M
                cores 0-1
        """
        topo = parse_topology(text)
        assert topo.name == "mini"
        assert topo.num_cores == 2
        assert topo.nodes[0].mem_bytes == 2 * GIB
        assert topo.ccds[0].l3_bytes == 16 * MIB

    def test_comments_and_blanks_ignored(self):
        text = "machine m\n# comment\n\nsocket 0\nnode 0 mem=1G bw=1G\nccd 0 l3=1M\ncores 0\n"
        assert parse_topology(text).num_cores == 1

    def test_core_list_forms(self):
        text = """
        machine m
          socket 0
            node 0 mem=1G bw=1G
              ccd 0 l3=1M
                cores 0,2-3,1
        """
        assert parse_topology(text).num_cores == 4

    def test_errors(self):
        with pytest.raises(TopologyError):
            parse_topology("machine empty\n")
        with pytest.raises(TopologyError):
            parse_topology("machine m\nnode 0 mem=1G bw=1G\n")  # node outside socket
        with pytest.raises(TopologyError):
            parse_topology("machine m\nsocket 0\nnode 0 mem=1G bw=1G\ncores 0\n")  # cores outside ccd
        with pytest.raises(TopologyError):
            parse_topology(
                "machine m\nsocket 0\nnode 0 mem=1G bw=1G\nccd 0 l3=1M\ncores 0\ncores 0\n"
            )  # duplicate core
        with pytest.raises(TopologyError):
            parse_topology(
                "machine m\nsocket 0\nnode 0 mem=1G bw=1G\nccd 0 l3=1M\ncores 1\n"
            )  # non-dense ids
        with pytest.raises(TopologyError):
            parse_topology(
                "machine m\nsocket 0\nnode 0 mem=1G bw=1G\nccd 0 l3=1M\ncores 3-1\n"
            )  # descending range
        with pytest.raises(TopologyError):
            parse_topology("machine m\nwidget 1\n")  # unknown directive
