"""Unit tests for the hierarchical machine model."""

import pytest

from repro.errors import TopologyError
from repro.topology.machine import GIB, MachineTopology, contiguous_ranges


class TestBuild:
    def test_zen4_shape(self, zen4):
        assert zen4.num_sockets == 2
        assert zen4.num_nodes == 8
        assert zen4.num_ccds == 16
        assert zen4.num_cores == 64
        assert zen4.cores_per_node == 8

    def test_tiny_shape(self, tiny):
        assert tiny.num_sockets == 1
        assert tiny.num_nodes == 2
        assert tiny.num_cores == 4

    def test_core_ids_dense_and_ordered(self, zen4):
        assert [c.core_id for c in zen4.cores] == list(range(64))

    def test_nodes_own_contiguous_core_ranges(self, zen4):
        for node in zen4.nodes:
            ids = list(node.core_ids)
            assert ids == list(range(ids[0], ids[0] + len(ids)))

    def test_node_partition_covers_all_cores(self, small):
        seen = sorted(c for n in small.nodes for c in n.core_ids)
        assert seen == list(range(small.num_cores))

    def test_ccd_l3_default(self, zen4):
        assert all(ccd.l3_bytes == 32 * 1024 * 1024 for ccd in zen4.ccds)

    def test_invalid_counts_rejected(self):
        with pytest.raises(TopologyError):
            MachineTopology.build(num_sockets=0)
        with pytest.raises(TopologyError):
            MachineTopology.build(cores_per_ccd=0)
        with pytest.raises(TopologyError):
            MachineTopology.build(mem_bandwidth_per_node=-1.0)
        with pytest.raises(TopologyError):
            MachineTopology.build(base_speed=0.0)


class TestQueries:
    def test_node_of_core(self, zen4):
        assert zen4.node_of_core(0) == 0
        assert zen4.node_of_core(8) == 1
        assert zen4.node_of_core(63) == 7

    def test_ccd_of_core(self, zen4):
        assert zen4.ccd_of_core(0) == 0
        assert zen4.ccd_of_core(4) == 1
        assert zen4.ccd_of_core(8) == 2

    def test_socket_of_node(self, zen4):
        assert zen4.socket_of_node(0) == 0
        assert zen4.socket_of_node(3) == 0
        assert zen4.socket_of_node(4) == 1

    def test_same_socket(self, zen4):
        assert zen4.same_socket(0, 3)
        assert not zen4.same_socket(3, 4)

    def test_primary_core(self, zen4):
        assert zen4.primary_core_of_node(0) == 0
        assert zen4.primary_core_of_node(5) == 40

    def test_siblings(self, zen4):
        assert zen4.siblings_in_node(10) == tuple(range(8, 16))

    def test_unknown_ids_raise(self, tiny):
        with pytest.raises(TopologyError):
            tiny.node_of_core(99)
        with pytest.raises(TopologyError):
            tiny.cores_of_node(9)
        with pytest.raises(TopologyError):
            tiny.nodes_of_socket(3)

    def test_describe_mentions_counts(self, zen4):
        text = zen4.describe()
        assert "64 core(s)" in text
        assert "8 NUMA node(s)" in text

    def test_node_memory_defaults(self, zen4):
        assert all(n.mem_bytes == 96 * GIB for n in zen4.nodes)


class TestValidation:
    def test_from_components_rejects_bad_node_ref(self, tiny):
        cores = list(tiny.cores)
        bad = cores[0].__class__(core_id=0, ccd_id=0, node_id=5, socket_id=0)
        with pytest.raises(TopologyError):
            MachineTopology.from_components(
                name="bad",
                sockets=tiny.sockets,
                nodes=tiny.nodes,
                ccds=tiny.ccds,
                cores=(bad,) + tuple(cores[1:]),
            )

    def test_validate_ok_on_presets(self, zen4, tiny, small, uma):
        for topo in (zen4, tiny, small, uma):
            topo.validate()


def test_contiguous_ranges():
    assert contiguous_ranges([]) == []
    assert contiguous_ranges([3]) == [(3, 3)]
    assert contiguous_ranges([0, 1, 2, 5, 6, 9]) == [(0, 2), (5, 6), (9, 9)]
