"""Unit tests for bit masks and proc_bind placement policies."""

import pytest

from repro.errors import TopologyError
from repro.topology.affinity import (
    BitMask,
    CpuMask,
    NodeMask,
    proc_bind_close,
    proc_bind_spread,
)


class TestBitMask:
    def test_empty_and_full(self):
        assert BitMask.empty(8).count() == 0
        assert BitMask.full(8).count() == 8
        assert BitMask.full(8).bits == 0xFF

    def test_from_indices(self):
        m = BitMask.from_indices([0, 3, 5], 8)
        assert m.indices() == [0, 3, 5]
        assert m.contains(3)
        assert not m.contains(1)

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            BitMask.from_indices([8], 8)
        with pytest.raises(TopologyError):
            BitMask(bits=1 << 9, width=8)
        with pytest.raises(TopologyError):
            BitMask(bits=-1, width=8)
        with pytest.raises(TopologyError):
            BitMask(bits=0, width=0)

    def test_first(self):
        assert BitMask.from_indices([4, 6], 8).first() == 4
        with pytest.raises(TopologyError):
            BitMask.empty(4).first()

    def test_algebra(self):
        a = BitMask.from_indices([0, 1], 8)
        b = BitMask.from_indices([1, 2], 8)
        assert a.union(b).indices() == [0, 1, 2]
        assert a.intersection(b).indices() == [1]
        assert a.difference(b).indices() == [0]
        assert a.with_index(7).indices() == [0, 1, 7]
        assert a.intersection(b).is_subset(a)

    def test_width_mismatch(self):
        with pytest.raises(TopologyError):
            BitMask.full(4).union(BitMask.full(8))

    def test_str_ranges(self):
        assert str(BitMask.from_indices([0, 1, 2, 5], 8)) == "{0-2,5}"
        assert str(BitMask.empty(4)) == "{}"

    def test_iter_and_len(self):
        m = BitMask.from_indices([2, 4], 8)
        assert list(m) == [2, 4]
        assert len(m) == 2


class TestNodeMask:
    def test_for_topology(self, zen4):
        m = NodeMask.for_topology(zen4)
        assert m.count() == 8

    def test_cores_of_mask(self, zen4):
        m = NodeMask.from_indices([0, 2], 8)
        cores = m.cores(zen4)
        assert cores == list(range(0, 8)) + list(range(16, 24))

    def test_cores_width_mismatch(self, tiny):
        m = NodeMask.from_indices([0], 8)
        with pytest.raises(TopologyError):
            m.cores(tiny)

    def test_algebra_preserves_type(self):
        a = NodeMask.from_indices([0], 4)
        b = NodeMask.from_indices([1], 4)
        assert isinstance(a.union(b), NodeMask)


class TestProcBind:
    def test_close_packs_consecutively(self, zen4):
        assert proc_bind_close(zen4, 10) == list(range(10))

    def test_close_wraps_on_oversubscription(self, tiny):
        assert proc_bind_close(tiny, 6) == [0, 1, 2, 3, 0, 1]

    def test_spread_distributes_across_nodes(self, zen4):
        placement = proc_bind_spread(zen4, 8)
        nodes = {zen4.node_of_core(c) for c in placement}
        assert nodes == set(range(8))

    def test_spread_full_machine_uses_every_core(self, small):
        placement = proc_bind_spread(small, small.num_cores)
        assert sorted(placement) == list(range(small.num_cores))

    def test_invalid_thread_count(self, tiny):
        with pytest.raises(TopologyError):
            proc_bind_close(tiny, 0)
        with pytest.raises(TopologyError):
            proc_bind_spread(tiny, -1)


class TestProcBindEdgeCases:
    def test_spread_oversubscription_wraps(self, tiny):
        placement = proc_bind_spread(tiny, 6)
        assert len(placement) == 6
        assert set(placement) <= set(range(4))

    def test_close_exact_machine(self, small):
        assert proc_bind_close(small, 16) == list(range(16))

    def test_spread_single_thread(self, zen4):
        placement = proc_bind_spread(zen4, 1)
        assert placement == [0]
