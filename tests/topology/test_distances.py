"""Unit tests for the SLIT-style NUMA distance matrix."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.distances import LOCAL_DISTANCE, DistanceMatrix


class TestConstruction:
    def test_from_topology_zen4(self, zen4):
        d = DistanceMatrix.from_topology(zen4)
        assert d.num_nodes == 8
        assert d.distance(0, 0) == LOCAL_DISTANCE
        assert d.distance(0, 1) == 11  # same socket
        assert d.distance(0, 4) == 14  # cross socket

    def test_symmetry(self, zen4):
        d = DistanceMatrix.from_topology(zen4)
        assert np.allclose(d.matrix, d.matrix.T)

    def test_custom_distances(self, small):
        d = DistanceMatrix.from_topology(small, intra_socket=12, inter_socket=20)
        assert d.distance(0, 1) == 12
        assert d.distance(0, 2) == 20

    def test_invalid_ordering_rejected(self, small):
        with pytest.raises(TopologyError):
            DistanceMatrix.from_topology(small, intra_socket=40, inter_socket=20)
        with pytest.raises(TopologyError):
            DistanceMatrix.from_topology(small, intra_socket=5, inter_socket=20)

    def test_bad_matrix_rejected(self):
        with pytest.raises(TopologyError):
            DistanceMatrix(matrix=np.array([[10.0, 16.0]]))  # not square
        with pytest.raises(TopologyError):
            DistanceMatrix(matrix=np.array([[12.0]]))  # bad diagonal
        m = np.array([[10.0, 16.0], [20.0, 10.0]])
        with pytest.raises(TopologyError):
            DistanceMatrix(matrix=m)  # asymmetric
        m = np.array([[10.0, 5.0], [5.0, 10.0]])
        with pytest.raises(TopologyError):
            DistanceMatrix(matrix=m)  # remote below local

    def test_matrix_is_frozen(self, zen4):
        d = DistanceMatrix.from_topology(zen4)
        with pytest.raises(ValueError):
            d.matrix[0, 1] = 99


class TestLatencyFactors:
    def test_local_factor_is_one(self, small):
        d = DistanceMatrix.from_topology(small)
        assert d.latency_factor(2, 2) == 1.0

    def test_remote_factors(self, small):
        d = DistanceMatrix.from_topology(small)
        assert d.latency_factor(0, 1) == pytest.approx(1.1)
        assert d.latency_factor(0, 2) == pytest.approx(1.4)

    def test_factors_vector(self, small):
        d = DistanceMatrix.from_topology(small)
        vec = d.latency_factors_from(0)
        assert vec.shape == (4,)
        assert vec[0] == 1.0
        assert vec[3] == pytest.approx(1.4)

    def test_nearest_nodes_order(self, zen4):
        d = DistanceMatrix.from_topology(zen4)
        order = d.nearest_nodes(5)
        assert order[0] == 5
        # same-socket nodes (4..7) come before the other socket
        assert set(order[:4]) == {4, 5, 6, 7}

    def test_unknown_node_raises(self, small):
        d = DistanceMatrix.from_topology(small)
        with pytest.raises(TopologyError):
            d.distance(0, 9)
        with pytest.raises(TopologyError):
            d.nearest_nodes(-1)
