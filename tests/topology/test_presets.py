"""Unit tests for the topology presets."""

from repro.topology.distances import LOCAL_DISTANCE
from repro.topology.machine import GIB
from repro.topology.presets import (
    default_distances,
    dual_socket_small,
    single_node,
    tiny_two_node,
    zen4_9354,
)


def test_zen4_matches_paper_platform():
    """64 cores, 8 NUMA nodes x 8 cores, 4 nodes/socket, 2 CCDs x 4 cores."""
    topo = zen4_9354()
    assert topo.num_cores == 64
    assert topo.num_nodes == 8
    assert topo.num_sockets == 2
    assert all(n.num_cores == 8 for n in topo.nodes)
    assert all(len(topo.nodes_of_socket(s)) == 4 for s in range(2))
    assert all(len(n.ccd_ids) == 2 for n in topo.nodes)
    assert all(len(c.core_ids) == 4 for c in topo.ccds)
    # 768 GB total memory
    assert sum(n.mem_bytes for n in topo.nodes) == 768 * GIB


def test_zen4_custom_bandwidth():
    topo = zen4_9354(mem_bandwidth_per_node=20.0 * GIB)
    assert topo.nodes[0].mem_bandwidth == 20.0 * GIB


def test_small_presets():
    assert dual_socket_small().num_cores == 16
    assert dual_socket_small().num_nodes == 4
    assert single_node(6).num_nodes == 1
    assert single_node(6).num_cores == 6
    assert tiny_two_node().num_cores == 4


def test_default_distances_classes():
    d = default_distances(zen4_9354())
    assert d.distance(0, 0) == LOCAL_DISTANCE
    assert d.distance(0, 1) == 11
    assert d.distance(0, 7) == 14


def test_uma_distances_trivial():
    d = default_distances(single_node(4))
    assert d.num_nodes == 1
    assert d.latency_factor(0, 0) == 1.0
