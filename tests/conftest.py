"""Shared fixtures: small machines, run contexts, and workload helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.access import AccessPattern
from repro.runtime.context import RunContext
from repro.runtime.task import TaskloopWork
from repro.topology.presets import (
    default_distances,
    dual_socket_small,
    single_node,
    tiny_two_node,
    zen4_9354,
)


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Point the persistent run cache inside ``tmp_path`` for every test.

    Anything that resolves the default cache location (the CLI, scripts,
    ``ExperimentConfig.from_env``) lands in the test's private directory,
    so no test ever writes outside ``tmp_path``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-run-cache"))


@pytest.fixture
def tmp_cache(tmp_path):
    """A fresh on-disk run cache rooted inside ``tmp_path``."""
    from repro.exp.cache import ResultCache

    return ResultCache(tmp_path / "run-cache")


@pytest.fixture
def tiny():
    """4 cores, 2 NUMA nodes, 1 socket."""
    return tiny_two_node()


@pytest.fixture
def small():
    """16 cores, 4 NUMA nodes, 2 sockets."""
    return dual_socket_small()


@pytest.fixture
def uma():
    """4 cores, 1 NUMA node (no NUMA effects)."""
    return single_node(4)


@pytest.fixture(scope="session")
def zen4():
    """The paper's 64-core platform."""
    return zen4_9354()


@pytest.fixture
def tiny_ctx(tiny):
    return RunContext.create(tiny, seed=7)


@pytest.fixture
def small_ctx(small):
    return RunContext.create(small, seed=7)


@pytest.fixture
def tiny_distances(tiny):
    return default_distances(tiny)


def make_work(
    ctx: RunContext,
    *,
    uid: str = "test.loop",
    region_name: str = "data",
    region_bytes: int = 64 * 1024 * 1024,
    total_iters: int = 64,
    num_tasks: int = 8,
    work_seconds: float = 0.01,
    mem_frac: float = 0.5,
    pattern: AccessPattern | None = None,
    reuse: float = 0.0,
    gamma: float = 0.0,
    weights: np.ndarray | None = None,
) -> TaskloopWork:
    """Construct a TaskloopWork against a fresh or existing region."""
    if region_name not in ctx.mem:
        ctx.mem.allocate(region_name, region_bytes)
    return TaskloopWork(
        uid=uid,
        name=uid.split(".")[-1],
        total_iters=total_iters,
        num_tasks=num_tasks,
        work_seconds=work_seconds,
        mem_frac=mem_frac,
        weights=weights if weights is not None else np.ones(64),
        region=ctx.mem.region(region_name),
        pattern=pattern or AccessPattern.blocked(),
        reuse=reuse,
        gamma=gamma,
    )
