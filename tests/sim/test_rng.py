"""Unit tests for named deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import spawn_key, stream


def test_same_seed_same_stream():
    a = stream(42, "runtime", "steal").random(8)
    b = stream(42, "runtime", "steal").random(8)
    assert np.array_equal(a, b)


def test_different_names_differ():
    a = stream(42, "runtime", "steal").random(8)
    b = stream(42, "runtime", "place").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = stream(1, "x").random(8)
    b = stream(2, "x").random(8)
    assert not np.array_equal(a, b)


def test_nested_names_independent_of_extras():
    """Adding a consumer with a new name must not change existing draws."""
    before = stream(7, "a").random(4)
    _ = stream(7, "b").random(4)
    after = stream(7, "a").random(4)
    assert np.array_equal(before, after)


def test_spawn_key_stable():
    assert spawn_key("runtime", "steal") == spawn_key("runtime", "steal")
    assert spawn_key("a") != spawn_key("b")


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        stream(-1, "x")
