"""Unit tests for the vectorised per-core progress state."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.progress import CoreStates


def start_simple(states, core, body=1.0, overhead=0.0, mem_frac=0.0, weights=None):
    w = weights if weights is not None else np.zeros(states.num_nodes)
    states.start(
        core, body=body, overhead=overhead, mem_frac=mem_frac, gamma=0.0,
        weights=w, payload=f"task-{core}",
    )


@pytest.fixture
def states():
    return CoreStates(num_cores=4, num_nodes=2)


class TestStartFinish:
    def test_start_marks_active(self, states):
        start_simple(states, 0)
        assert states.active[0]
        assert not states.active[1]
        assert states.any_active()

    def test_double_start_rejected(self, states):
        start_simple(states, 0)
        with pytest.raises(SimulationError):
            start_simple(states, 0)

    def test_finish_returns_payload(self, states):
        start_simple(states, 2)
        assert states.finish(2) == "task-2"
        assert not states.active[2]

    def test_finish_idle_rejected(self, states):
        with pytest.raises(SimulationError):
            states.finish(1)

    def test_validation(self, states):
        with pytest.raises(SimulationError):
            start_simple(states, 9)
        with pytest.raises(SimulationError):
            states.start(0, body=-1.0, overhead=0.0, mem_frac=0.0, gamma=0.0,
                         weights=np.zeros(2), payload=None)
        with pytest.raises(SimulationError):
            states.start(0, body=1.0, overhead=0.0, mem_frac=2.0, gamma=0.0,
                         weights=np.zeros(2), payload=None)
        with pytest.raises(SimulationError):
            states.start(0, body=1.0, overhead=0.0, mem_frac=0.5, gamma=0.0,
                         weights=np.zeros(3), payload=None)


class TestCompletionTimes:
    def test_idle_cores_infinite(self, states):
        t = states.completion_times(np.ones(4))
        assert np.all(np.isinf(t))

    def test_plain_body(self, states):
        start_simple(states, 0, body=2.0)
        t = states.completion_times(np.ones(4))
        assert t[0] == pytest.approx(2.0)

    def test_slowdown_scales_body(self, states):
        start_simple(states, 0, body=2.0)
        s = np.ones(4)
        s[0] = 3.0
        assert states.completion_times(s)[0] == pytest.approx(6.0)

    def test_overhead_not_slowed(self, states):
        start_simple(states, 0, body=2.0, overhead=1.0)
        s = np.ones(4)
        s[0] = 2.0
        assert states.completion_times(s)[0] == pytest.approx(1.0 + 4.0)

    def test_speed_scales_everything(self):
        states = CoreStates(2, 1, base_speed=np.array([2.0, 1.0]))
        start_simple(states, 0, body=2.0, overhead=1.0, weights=np.zeros(1))
        assert states.completion_times(np.ones(2))[0] == pytest.approx(1.5)


class TestAdvance:
    def test_completion_detection(self, states):
        start_simple(states, 0, body=1.0)
        start_simple(states, 1, body=2.0)
        done = states.advance(1.0, np.ones(4))
        assert done == [0]
        states.finish(0)  # caller contract: retire completed cores
        done = states.advance(1.0, np.ones(4))
        assert done == [1]

    def test_partial_progress(self, states):
        start_simple(states, 0, body=2.0)
        assert states.advance(0.5, np.ones(4)) == []
        assert states.rem[0] == pytest.approx(1.5)

    def test_overhead_burns_first(self, states):
        start_simple(states, 0, body=1.0, overhead=0.5)
        states.advance(0.25, np.ones(4))
        assert states.ov[0] == pytest.approx(0.25)
        assert states.rem[0] == pytest.approx(1.0)
        states.advance(0.5, np.ones(4))
        assert states.ov[0] == pytest.approx(0.0)
        assert states.rem[0] == pytest.approx(0.75)

    def test_zero_dt_noop(self, states):
        start_simple(states, 0)
        assert states.advance(0.0, np.ones(4)) == []

    def test_bad_dt(self, states):
        with pytest.raises(SimulationError):
            states.advance(-1.0, np.ones(4))
        with pytest.raises(SimulationError):
            states.advance(math.inf, np.ones(4))

    def test_busy_and_work_accounting(self, states):
        start_simple(states, 0, body=1.0)
        states.advance(1.0, np.ones(4))
        assert states.busy_time[0] == pytest.approx(1.0)
        assert states.work_done[0] == pytest.approx(1.0)
        assert states.busy_time[1] == 0.0


class TestNoise:
    def test_set_noise_scales_speed(self, states):
        states.set_noise(np.array([0.5, 1.0, 1.0, 1.0]))
        assert states.speed[0] == 0.5
        states.set_noise(np.ones(4))
        assert states.speed[0] == 1.0

    def test_noise_validation(self, states):
        with pytest.raises(SimulationError):
            states.set_noise(np.array([0.0, 1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError):
            states.set_noise(np.ones(3))

    def test_idle_cores_helper(self, states):
        start_simple(states, 1)
        eligible = np.array([True, True, True, False])
        assert states.idle_cores(eligible) == [0, 2]
        assert states.idle_cores() == [0, 2, 3]
