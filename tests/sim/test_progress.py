"""Unit tests for the vectorised per-core progress state."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.progress import CoreStates


def start_simple(states, core, body=1.0, overhead=0.0, mem_frac=0.0, weights=None):
    w = weights if weights is not None else np.zeros(states.num_nodes)
    states.start(
        core, body=body, overhead=overhead, mem_frac=mem_frac, gamma=0.0,
        weights=w, payload=f"task-{core}",
    )


@pytest.fixture
def states():
    return CoreStates(num_cores=4, num_nodes=2)


class TestStartFinish:
    def test_start_marks_active(self, states):
        start_simple(states, 0)
        assert states.active[0]
        assert not states.active[1]
        assert states.any_active()

    def test_double_start_rejected(self, states):
        start_simple(states, 0)
        with pytest.raises(SimulationError):
            start_simple(states, 0)

    def test_finish_returns_payload(self, states):
        start_simple(states, 2)
        assert states.finish(2) == "task-2"
        assert not states.active[2]

    def test_finish_idle_rejected(self, states):
        with pytest.raises(SimulationError):
            states.finish(1)

    def test_validation(self, states):
        with pytest.raises(SimulationError):
            start_simple(states, 9)
        with pytest.raises(SimulationError):
            states.start(0, body=-1.0, overhead=0.0, mem_frac=0.0, gamma=0.0,
                         weights=np.zeros(2), payload=None)
        with pytest.raises(SimulationError):
            states.start(0, body=1.0, overhead=0.0, mem_frac=2.0, gamma=0.0,
                         weights=np.zeros(2), payload=None)
        with pytest.raises(SimulationError):
            states.start(0, body=1.0, overhead=0.0, mem_frac=0.5, gamma=0.0,
                         weights=np.zeros(3), payload=None)


class TestCompletionTimes:
    def test_idle_cores_infinite(self, states):
        t = states.completion_times(np.ones(4))
        assert np.all(np.isinf(t))

    def test_plain_body(self, states):
        start_simple(states, 0, body=2.0)
        t = states.completion_times(np.ones(4))
        assert t[0] == pytest.approx(2.0)

    def test_slowdown_scales_body(self, states):
        start_simple(states, 0, body=2.0)
        s = np.ones(4)
        s[0] = 3.0
        assert states.completion_times(s)[0] == pytest.approx(6.0)

    def test_overhead_not_slowed(self, states):
        start_simple(states, 0, body=2.0, overhead=1.0)
        s = np.ones(4)
        s[0] = 2.0
        assert states.completion_times(s)[0] == pytest.approx(1.0 + 4.0)

    def test_speed_scales_everything(self):
        states = CoreStates(2, 1, base_speed=np.array([2.0, 1.0]))
        start_simple(states, 0, body=2.0, overhead=1.0, weights=np.zeros(1))
        assert states.completion_times(np.ones(2))[0] == pytest.approx(1.5)


class TestAdvance:
    def test_completion_detection(self, states):
        start_simple(states, 0, body=1.0)
        start_simple(states, 1, body=2.0)
        done = states.advance(1.0, np.ones(4))
        assert done == [0]
        states.finish(0)  # caller contract: retire completed cores
        done = states.advance(1.0, np.ones(4))
        assert done == [1]

    def test_partial_progress(self, states):
        start_simple(states, 0, body=2.0)
        assert states.advance(0.5, np.ones(4)) == []
        assert states.rem[0] == pytest.approx(1.5)

    def test_overhead_burns_first(self, states):
        start_simple(states, 0, body=1.0, overhead=0.5)
        states.advance(0.25, np.ones(4))
        assert states.ov[0] == pytest.approx(0.25)
        assert states.rem[0] == pytest.approx(1.0)
        states.advance(0.5, np.ones(4))
        assert states.ov[0] == pytest.approx(0.0)
        assert states.rem[0] == pytest.approx(0.75)

    def test_zero_dt_noop(self, states):
        start_simple(states, 0)
        assert states.advance(0.0, np.ones(4)) == []

    def test_bad_dt(self, states):
        with pytest.raises(SimulationError):
            states.advance(-1.0, np.ones(4))
        with pytest.raises(SimulationError):
            states.advance(math.inf, np.ones(4))

    def test_busy_and_work_accounting(self, states):
        start_simple(states, 0, body=1.0)
        states.advance(1.0, np.ones(4))
        assert states.busy_time[0] == pytest.approx(1.0)
        assert states.work_done[0] == pytest.approx(1.0)
        assert states.busy_time[1] == 0.0


class TestNoise:
    def test_set_noise_scales_speed(self, states):
        states.set_noise(np.array([0.5, 1.0, 1.0, 1.0]))
        assert states.speed[0] == 0.5
        states.set_noise(np.ones(4))
        assert states.speed[0] == 1.0

    def test_noise_validation(self, states):
        with pytest.raises(SimulationError):
            states.set_noise(np.array([0.0, 1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError):
            states.set_noise(np.ones(3))

    def test_idle_cores_helper(self, states):
        start_simple(states, 1)
        eligible = np.array([True, True, True, False])
        assert states.idle_cores(eligible) == [0, 2]
        assert states.idle_cores() == [0, 2, 3]


class TestSpeedLayers:
    """The speed-mutation choke point: named multiplicative layers."""

    def test_layers_compose_multiplicatively(self, states):
        states.set_speed_layer("dvfs", np.array([0.5, 1.0, 1.0, 1.0]))
        states.set_speed_layer("noise", np.array([0.8, 0.8, 1.0, 1.0]))
        assert states.speed[0] == pytest.approx(0.4)
        assert states.speed[1] == pytest.approx(0.8)
        assert states.speed[2] == 1.0

    def test_clear_restores_base(self, states):
        states.set_speed_layer("asym", np.full(4, 0.25))
        states.clear_speed_layer("asym")
        assert np.array_equal(states.speed, np.ones(4))
        states.clear_speed_layer("absent")  # no-op, no error

    def test_noise_is_a_layer(self, states):
        states.set_noise(np.array([0.5, 1.0, 1.0, 1.0]))
        states.set_speed_layer("asym", np.full(4, 0.5))
        assert states.speed[0] == pytest.approx(0.25)
        states.set_noise(np.ones(4))
        assert states.speed[0] == pytest.approx(0.5)

    def test_layer_over_base_speed_matches_set_noise_bytes(self):
        """Single-layer composition reproduces the old noise path bitwise."""
        base = np.array([2.0, 1.0, 0.5])
        f = np.array([0.7, 1.1, 0.9])
        a = CoreStates(3, 1, base_speed=base)
        a.set_noise(f)
        assert np.array_equal(a.speed, base * f)

    def test_layer_validation(self, states):
        with pytest.raises(SimulationError):
            states.set_speed_layer("x", np.array([0.0, 1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError):
            states.set_speed_layer("x", np.array([math.inf, 1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError):
            states.set_speed_layer("x", np.ones(3))

    def test_every_mutation_bumps_speed_epoch(self, states):
        e0 = states.speed_epoch
        states.set_speed_layer("a", np.ones(4))
        states.set_noise(np.full(4, 0.5))
        states.clear_speed_layer("a")
        assert states.speed_epoch == e0 + 3

    def test_speed_div_aliases_speed_when_all_online(self, states):
        states.set_speed_layer("a", np.full(4, 0.5))
        assert states.speed_div is states.speed


class TestOnline:
    def test_offline_core_speed_zero_div_one(self, states):
        states.set_online(np.array([True, False, True, True]))
        assert states.speed[1] == 0.0
        assert states.speed_div[1] == 1.0
        assert states.any_offline
        assert states.offline[1]

    def test_online_epoch_bumps_only_on_flips(self, states):
        e0 = states.online_epoch
        states.set_online(np.ones(4, dtype=bool))  # no flip
        assert states.online_epoch == e0
        states.set_online(np.array([True, False, True, True]))
        assert states.online_epoch == e0 + 1
        states.set_online(np.array([True, False, True, True]))  # same mask
        assert states.online_epoch == e0 + 1
        # speed changes alone never touch online_epoch
        states.set_noise(np.full(4, 0.5))
        assert states.online_epoch == e0 + 1

    def test_offline_active_core_never_completes(self, states):
        start_simple(states, 1, body=1.0)
        states.set_online(np.array([True, False, True, True]))
        t = states.completion_times(np.ones(4))
        assert math.isinf(t[1])

    def test_offline_task_freezes_and_resumes(self, states):
        start_simple(states, 0, body=2.0, overhead=0.5)
        states.set_online(np.array([False, True, True, True]))
        states.advance(5.0, np.ones(4))
        assert states.rem[0] == pytest.approx(2.0)  # nothing progressed
        assert states.ov[0] == pytest.approx(0.5)
        assert states.busy_time[0] == pytest.approx(5.0)  # core still held
        states.set_online(np.ones(4, dtype=bool))
        assert states.completion_times(np.ones(4))[0] == pytest.approx(2.5)

    def test_flips_land_in_change_log(self, states):
        states.track_changes = True
        states.set_online(np.array([True, False, False, True]))
        assert states.changed == [1, 2]
        states.changed.clear()
        states.set_noise(np.full(4, 0.5))  # pure speed change: not logged
        assert states.changed == []

    def test_online_mask_validation(self, states):
        with pytest.raises(SimulationError):
            states.set_online(np.ones(3, dtype=bool))


class TestStalePredictionGuard:
    """Regression: completion predictions must not survive speed mutations.

    The historical bug: the executor predicted completion times, a noise /
    DVFS / offline event changed core speeds, and the pre-change ``dt``
    was still used to advance — firing the finish early (core sped up
    mid-step would be "late", slowed down would be "early").  The choke
    point stamps predictions with ``speed_epoch`` and ``advance`` refuses
    stale ones.
    """

    def test_stale_prediction_would_fire_finish_early(self, states):
        start_simple(states, 0, body=2.0)
        dt = states.completion_times(np.ones(4))[0]
        assert dt == pytest.approx(2.0)
        # core halves speed before the step is taken: the task now needs
        # 4.0 wall seconds, so advancing by the stale 2.0 would complete
        # it a full 2.0 seconds early
        states.set_speed_layer("dvfs", np.array([0.5, 1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError, match="stale completion predictions"):
            states.advance(dt, np.ones(4))
        # re-deriving gives the correct post-change prediction and works
        dt2 = states.completion_times(np.ones(4))[0]
        assert dt2 == pytest.approx(4.0)
        assert states.advance(dt2, np.ones(4)) == [0]

    def test_stale_prediction_after_offline_flip(self, states):
        start_simple(states, 0, body=1.0)
        states.completion_times(np.ones(4))
        states.set_online(np.array([False, True, True, True]))
        with pytest.raises(SimulationError, match="stale"):
            states.advance(1.0, np.ones(4))

    def test_advance_without_prediction_is_allowed(self, states):
        start_simple(states, 0, body=1.0)
        states.set_noise(np.full(4, 0.5))
        # no completion_times() outstanding: nothing to be stale
        states.advance(0.5, np.ones(4))

    def test_fresh_prediction_advances_cleanly(self, states):
        start_simple(states, 0, body=1.0)
        states.set_noise(np.full(4, 0.5))
        dt = states.completion_times(np.ones(4))[0]
        assert states.advance(dt, np.ones(4)) == [0]
