"""Property tests for the allocation-free :class:`EventQueue`.

The queue was rebuilt for the incremental engine's hot loop: tuple-keyed
heap entries, an incrementally maintained live count, a caller-owned
``pop_due`` output buffer.  These properties pin the behaviours the
executor leans on, checked against random interleavings of schedule /
cancel / pop and against a naive sorted-list model:

* the internal heap invariant survives any operation sequence;
* ``pop_due`` applies the relative due tolerance, so events a few ulps
  past ``now`` still fire even when the clock is enormous;
* ``len`` always equals the number of live (scheduled, not yet popped,
  not cancelled) events, including cancels that land after a pop;
* the ``out=`` buffer is reused, cleared, and gives the same answer as
  the allocating form.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import DUE_ABS_TOL, DUE_REL_TOL, EventQueue


def assert_heap_invariant(queue: EventQueue) -> None:
    heap = queue._heap
    for i in range(1, len(heap)):
        parent = (i - 1) // 2
        assert heap[parent][:2] <= heap[i][:2]


# One operation = (kind, payload); payloads index into whatever events
# currently exist, modulo, so every generated program is valid.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=1_000)),
        st.tuples(
            st.just("pop"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops_strategy)
def test_queue_matches_sorted_list_model(ops):
    """Random schedule/cancel/pop interleavings against a naive model.

    The model keeps a sorted list of live (time, seq) pairs; cancel marks,
    pop removes everything due.  After every operation the queue's length,
    emptiness, next_time and pop results must match the model exactly, and
    the underlying heap must still be a heap.
    """
    queue = EventQueue()
    model: list[tuple[float, int]] = []  # live events, kept sorted
    handles: dict[int, object] = {}  # seq -> Event, everything ever scheduled
    live_seqs: set[int] = set()
    now = 0.0

    for kind, arg in ops:
        if kind == "schedule":
            ev = queue.schedule(arg, lambda: None, tag=f"t{arg}")
            model.append((ev.time, ev.seq))
            model.sort()
            handles[ev.seq] = ev
            live_seqs.add(ev.seq)
        elif kind == "cancel":
            if handles:
                seq = sorted(handles)[arg % len(handles)]
                handles[seq].cancel()
                # cancelling twice, or after a pop, must be a no-op
                handles[seq].cancel()
                if seq in live_seqs:
                    live_seqs.discard(seq)
                    model.remove(next(m for m in model if m[1] == seq))
        else:  # pop
            now = max(now, arg)  # the simulation clock is monotonic
            popped = queue.pop_due(now)
            due = [
                m
                for m in model
                if m[0] <= now
                or math.isclose(m[0], now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL)
            ]
            assert [(ev.time, ev.seq) for ev in popped] == due
            model = model[len(due):]
            for ev in popped:
                live_seqs.discard(ev.seq)

        assert len(queue) == len(model) == len(live_seqs)
        assert queue.is_empty() == (not model)
        expected_next = model[0][0] if model else math.inf
        assert queue.next_time() == expected_next
        assert_heap_invariant(queue)

    # drain: everything still live comes out in (time, seq) order
    remaining = queue.pop_due(math.floor(1e9))
    assert [(ev.time, ev.seq) for ev in remaining] == model
    assert queue.is_empty() and len(queue) == 0


@settings(max_examples=120, deadline=None)
@given(
    now=st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    ulps=st.integers(min_value=0, max_value=4),
    order=st.permutations(range(4)),
)
def test_pop_due_relative_tolerance_at_large_now(now, ulps, order):
    """An event a few ulps *after* ``now`` is still due, at any magnitude.

    This is the PR 3 bug the tolerance exists for: timestamps computed by
    different float accumulation orders disagree in the last bits, and an
    absolute epsilon stops resolving that once the clock passes ~0.01 s.
    """
    t = now
    for _ in range(ulps):
        t = math.nextafter(t, math.inf)
    queue = EventQueue()
    for i in order:  # insertion order must not affect due-ness
        queue.schedule(t, lambda: None, tag=str(i))
    assert math.isclose(t, now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL)
    popped = queue.pop_due(now)
    assert len(popped) == 4
    assert [ev.tag for ev in popped] == [str(i) for i in order]  # stable
    assert queue.is_empty()

    # ...but an event clearly beyond the tolerance is not due
    queue.schedule(now * (1.0 + 1e-9), lambda: None)
    assert queue.pop_due(now) == []
    assert len(queue) == 1


@settings(max_examples=100, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=0,
        max_size=30,
    ),
    cutoff=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)
def test_out_buffer_reuse_matches_allocating_form(times, cutoff):
    """``pop_due(now, out=buf)`` returns ``buf`` itself, cleared of any
    stale content, with exactly the allocating call's events."""
    q_alloc, q_buf = EventQueue(), EventQueue()
    for t in times:
        q_alloc.schedule(t, lambda: None)
        q_buf.schedule(t, lambda: None)
    buf = ["stale", "entries"]
    got_buf = q_buf.pop_due(cutoff, out=buf)
    got_alloc = q_alloc.pop_due(cutoff)
    assert got_buf is buf
    assert [(e.time, e.seq) for e in got_buf] == [
        (e.time, e.seq) for e in got_alloc
    ]
    assert len(q_buf) == len(q_alloc)
    # the same buffer survives a second polling step, as in the hot loop
    q_buf.schedule(cutoff, lambda: None)
    again = q_buf.pop_due(cutoff, out=buf)
    assert again is buf and len(again) == 1


@settings(max_examples=100, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    data=st.data(),
)
def test_cancel_after_pop_never_corrupts_len(times, data):
    """A handle cancelled *after* its event was popped must not decrement
    the live count (the ``_queue = None`` hand-off in ``pop_due``)."""
    queue = EventQueue()
    events = [queue.schedule(t, lambda: None) for t in times]
    cutoff = data.draw(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
    )
    popped = queue.pop_due(cutoff)
    survivors = len(events) - len(popped)
    assert len(queue) == survivors
    for ev in popped:
        ev.cancel()  # late cancel: already delivered, must be a no-op
        ev.cancel()
    assert len(queue) == survivors
    assert_heap_invariant(queue)
    # cancelled-in-heap events are lazily dropped, never delivered
    for ev in list(queue._heap):
        ev[2].cancel()
    assert queue.pop_due(math.inf) == []
    assert queue.is_empty()
