"""Tests for the Chrome ``trace_event`` exporter."""

import json

import pytest

from repro.errors import ExperimentError
from repro.sim.chrome_trace import (
    RUNTIME_TRACK_NAME,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.sim.trace import StealRecord, TaskloopRecord, TaskRecord, Trace
from repro.topology.presets import dual_socket_small, tiny_two_node


def _trace():
    t = Trace(enabled=True)
    t.add_taskloop(TaskloopRecord(
        taskloop="app.loop", iteration=0, num_threads=4, node_mask_bits=0b11,
        steal_policy="strict", start=0.0, end=2.0, overhead=0.01,
    ))
    t.add_task(TaskRecord(
        taskloop="app.loop", chunk_index=0, core=1, node=0,
        start=0.0, end=1.0, base_time=0.9, stolen=False,
    ))
    t.add_task(TaskRecord(
        taskloop="app.loop", chunk_index=1, core=2, node=1,
        start=0.5, end=1.5, base_time=0.8, stolen=True,
    ))
    t.add_steal(StealRecord(
        taskloop="app.loop", chunk_index=1, thief_core=2, victim_core=0,
        remote=True, time=0.5,
    ))
    return t


def _by_phase(events, ph):
    return [e for e in events if e["ph"] == ph]


def test_metadata_names_every_node_and_core():
    topo = dual_socket_small()
    events = chrome_trace_events(Trace(enabled=True), topo)
    names = {(e["pid"], e["args"]["name"]) for e in events
             if e["name"] == "process_name"}
    assert (topo.num_nodes, RUNTIME_TRACK_NAME) in names
    assert (0, "node 0 (socket 0)") in names
    assert (3, "node 3 (socket 1)") in names
    threads = [e for e in events if e["name"] == "thread_name"]
    assert len(threads) == topo.num_cores
    # runtime track sorts first
    sort = {e["pid"]: e["args"]["sort_index"] for e in events
            if e["name"] == "process_sort_index"}
    assert sort[topo.num_nodes] == -1


def test_taskloop_slice_lands_on_the_runtime_track():
    topo = tiny_two_node()
    events = chrome_trace_events(_trace(), topo)
    slices = [e for e in _by_phase(events, "X") if e["cat"] == "taskloop"]
    assert len(slices) == 1
    s = slices[0]
    assert s["pid"] == topo.num_nodes
    assert s["ts"] == 0.0
    assert s["dur"] == pytest.approx(2.0e6)  # seconds -> microseconds
    assert s["args"]["num_threads"] == 4
    assert s["args"]["node_mask"] == "0x3"
    assert s["args"]["steal_policy"] == "strict"


def test_task_slices_map_to_node_process_and_core_thread():
    events = chrome_trace_events(_trace(), tiny_two_node())
    tasks = [e for e in _by_phase(events, "X") if e["cat"] in ("task", "task.stolen")]
    assert len(tasks) == 2
    local = next(e for e in tasks if e["cat"] == "task")
    stolen = next(e for e in tasks if e["cat"] == "task.stolen")
    assert (local["pid"], local["tid"]) == (0, 1)
    assert (stolen["pid"], stolen["tid"]) == (1, 2)
    assert stolen["args"]["stolen"] is True
    assert stolen["ts"] == pytest.approx(0.5e6)
    assert stolen["dur"] == pytest.approx(1.0e6)


def test_steal_instant_sits_on_the_thiefs_track():
    topo = tiny_two_node()
    events = chrome_trace_events(_trace(), topo)
    instants = _by_phase(events, "i")
    assert len(instants) == 1
    i = instants[0]
    assert i["cat"] == "steal.remote"
    assert i["s"] == "t"
    assert i["pid"] == topo.node_of_core(2)
    assert i["tid"] == 2
    assert i["args"]["victim_core"] == 0


def test_negative_durations_are_clamped():
    t = Trace(enabled=True)
    t.add_task(TaskRecord(
        taskloop="a", chunk_index=0, core=0, node=0,
        start=1.0, end=1.0, base_time=0.0, stolen=False,
    ))
    events = chrome_trace_events(t, tiny_two_node())
    slice_ = next(e for e in events if e["ph"] == "X")
    assert slice_["dur"] == 0.0


def test_write_refuses_an_empty_trace(tmp_path):
    with pytest.raises(ExperimentError, match="empty"):
        write_chrome_trace(tmp_path / "t.json", Trace(enabled=True),
                           tiny_two_node())
    assert not (tmp_path / "t.json").exists()


def test_write_produces_a_loadable_trace_object(tmp_path):
    topo = tiny_two_node()
    out = write_chrome_trace(tmp_path / "sub" / "t.json", _trace(), topo)
    payload = json.loads(out.read_text())
    assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"]["machine"] == topo.describe()
    assert payload["traceEvents"] == chrome_trace_events(_trace(), topo)


def test_exports_a_real_traced_run(tmp_path):
    """End to end: a simulated run's trace round-trips through the exporter."""
    from repro.runtime.runtime import OpenMPRuntime
    from repro.workloads.registry import make_benchmark

    topo = tiny_two_node()
    rt = OpenMPRuntime(topo, scheduler="ilan", seed=0, trace=True)
    rt.run_application(make_benchmark("matmul", timesteps=2))
    out = write_chrome_trace(tmp_path / "run.json", rt.last_ctx.trace, topo)
    payload = json.loads(out.read_text())
    events = payload["traceEvents"]
    cats = {e.get("cat") for e in events}
    assert "taskloop" in cats and "task" in cats
    # every slice sits on a known process: a node or the runtime track
    pids = {e["pid"] for e in events}
    assert pids <= set(topo.node_ids()) | {topo.num_nodes}
