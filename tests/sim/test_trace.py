"""Unit tests for execution tracing."""

from repro.sim.trace import StealRecord, TaskloopRecord, TaskRecord, Trace


def _task(i=0):
    return TaskRecord(
        taskloop="app.loop", chunk_index=i, core=1, node=0,
        start=0.0, end=1.0, base_time=0.9, stolen=False,
    )


def _steal(remote):
    return StealRecord(
        taskloop="app.loop", chunk_index=0, thief_core=2, victim_core=0,
        remote=remote, time=0.5,
    )


def _loop(name="app.loop", it=0):
    return TaskloopRecord(
        taskloop=name, iteration=it, num_threads=4, node_mask_bits=0b11,
        steal_policy="strict", start=0.0, end=2.0, overhead=0.01,
    )


def test_disabled_trace_ignores_appends():
    t = Trace(enabled=False)
    t.add_task(_task())
    t.add_steal(_steal(True))
    t.add_taskloop(_loop())
    assert not t.tasks and not t.steals and not t.taskloops


def test_enabled_trace_records():
    t = Trace(enabled=True)
    t.add_task(_task(0))
    t.add_task(_task(1))
    t.add_steal(_steal(True))
    t.add_steal(_steal(False))
    t.add_taskloop(_loop())
    assert len(t.tasks) == 2
    assert t.remote_steal_count() == 1
    assert len(t.taskloops) == 1


def test_taskloop_history_filters_by_name():
    t = Trace(enabled=True)
    t.add_taskloop(_loop("app.a", 0))
    t.add_taskloop(_loop("app.b", 0))
    t.add_taskloop(_loop("app.a", 1))
    hist = list(t.taskloop_history("app.a"))
    assert [r.iteration for r in hist] == [0, 1]


def test_elapsed_property():
    assert _loop().elapsed == 2.0


def test_clear():
    t = Trace(enabled=True)
    t.add_task(_task())
    t.clear()
    assert not t.tasks
