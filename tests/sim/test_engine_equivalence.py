"""Differential suite: the incremental engine is byte-identical, proven.

``--engine=incremental`` (:mod:`repro.sim.incremental` plus the fused
executor loop) promises *bit-for-bit* the same simulation as the
reference engine — same traces, same completion times, same counters,
same steal decisions — with the reference path kept alive as the oracle.
These tests pin that contract across hypothesis-generated task sets and
seeded campaigns: schedulers, machines (including the single-node
machine, which exercises the demand fast path's fallback), noise
processes, node leases and injected runner faults.

The suites below total well over 200 generated scenarios, every one
compared field-for-field with ``==`` / ``array_equal`` — no tolerances
anywhere: a single flipped mantissa bit anywhere in a run fails.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransientRunnerError
from repro.exp.runner import ExperimentConfig, Runner, RunSpec, derive_run_seed, execute_spec
from repro.interference.noise import NoiseParams
from repro.interference.timeline import ASYMMETRY_PRESETS, AsymmetrySpec
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers import create_scheduler
from repro.topology.presets import dual_socket_small, single_node, tiny_two_node
from repro.workloads.synthetic import make_synthetic
from tests.conftest import make_work

PRESETS = {
    "tiny": tiny_two_node,
    "uma": single_node,  # num_nodes == 1: the padded-demand fallback path
    "small": dual_socket_small,
}

SCHEDULERS = ("baseline", "ilan", "ilan-nomold", "worksharing")


# ----------------------------------------------------------------------
# comparison helpers: exact equality only
# ----------------------------------------------------------------------
def _counters_tuple(counters):
    if counters is None:
        return None
    return (
        counters.elapsed,
        counters.sat_time_integral,
        counters.peak_saturation,
        counters.bytes_total,
        counters.bytes_remote,
        counters.busy_time,
        counters.idle_time,
    )


def assert_taskloop_identical(tl1, tl2) -> None:
    assert tl1.uid == tl2.uid and tl1.name == tl2.name
    assert tl1.elapsed == tl2.elapsed
    assert tl1.num_threads == tl2.num_threads
    assert tl1.node_mask_bits == tl2.node_mask_bits
    assert tl1.steal_policy == tl2.steal_policy
    assert tl1.tasks_executed == tl2.tasks_executed
    assert tl1.steals_local == tl2.steals_local
    assert tl1.steals_remote == tl2.steals_remote
    assert tl1.overhead == tl2.overhead
    assert np.array_equal(tl1.node_perf, tl2.node_perf, equal_nan=True)
    assert np.array_equal(tl1.node_busy, tl2.node_busy, equal_nan=True)
    assert _counters_tuple(tl1.counters) == _counters_tuple(tl2.counters)


def assert_results_identical(r1, r2) -> None:
    assert r1.total_time == r2.total_time
    assert len(r1.taskloops) == len(r2.taskloops)
    for tl1, tl2 in zip(r1.taskloops, r2.taskloops):
        assert_taskloop_identical(tl1, tl2)


def assert_contexts_identical(c1: RunContext, c2: RunContext) -> None:
    assert c1.trace.tasks == c2.trace.tasks
    assert c1.trace.steals == c2.trace.steals
    assert c1.trace.taskloops == c2.trace.taskloops
    assert np.array_equal(c1.states.busy_time, c2.states.busy_time)
    assert np.array_equal(c1.states.work_done, c2.states.work_done)
    assert np.array_equal(c1.states.rem, c2.states.rem)
    assert c1.sim.now == c2.sim.now


# ----------------------------------------------------------------------
# suite 1: hypothesis task sets through the executor (both engines)
# ----------------------------------------------------------------------
@st.composite
def taskset_params(draw):
    return dict(
        preset=draw(st.sampled_from(sorted(PRESETS))),
        scheduler=draw(st.sampled_from(SCHEDULERS)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        num_tasks=draw(st.integers(min_value=1, max_value=24)),
        mem_frac=draw(st.floats(min_value=0.0, max_value=1.0)),
        reuse=draw(st.floats(min_value=0.0, max_value=1.0)),
        # gamma bounded so the contention penalty stays finite (the
        # documented caveat in repro.sim.incremental)
        gamma=draw(st.floats(min_value=0.0, max_value=4.0)),
        loops=draw(st.integers(min_value=1, max_value=3)),
        noisy=draw(st.booleans()),
    )


def _run_taskloops(engine: str, params: dict):
    noise = (
        NoiseParams(
            mean_interval=0.004,
            mean_duration=0.002,
            slow_factor=0.5,
            cores_fraction=0.3,
        )
        if params["noisy"]
        else None
    )
    ctx = RunContext.create(
        PRESETS[params["preset"]](),
        seed=params["seed"],
        trace=True,
        noise_params=noise,
        engine=engine,
    )
    sched = create_scheduler(params["scheduler"])
    sched.reset()
    executor = TaskloopExecutor(ctx)
    results = []
    # several encounters in one context: the all-idle reset between loops
    # and the PTT's cross-encounter learning both stay on the same bits
    for loop in range(params["loops"]):
        work = make_work(
            ctx,
            uid=f"equiv.loop{loop}",
            num_tasks=params["num_tasks"],
            total_iters=max(params["num_tasks"], 48),
            mem_frac=params["mem_frac"],
            reuse=params["reuse"],
            gamma=params["gamma"],
            work_seconds=0.004,
        )
        plan = sched.plan(work, ctx)
        result = executor.run(work, plan)
        sched.record(work, plan, result)
        results.append(result)
    return ctx, results


@settings(max_examples=120, deadline=None)
@given(taskset_params())
def test_taskset_byte_identical(params):
    """Arbitrary task sets: traces, completion times, counters, steals —
    all bitwise equal between the engines."""
    ctx_ref, res_ref = _run_taskloops("reference", params)
    ctx_inc, res_inc = _run_taskloops("incremental", params)
    assert len(res_ref) == len(res_inc)
    for r1, r2 in zip(res_ref, res_inc):
        assert_taskloop_identical(r1, r2)
    assert_contexts_identical(ctx_ref, ctx_inc)


# ----------------------------------------------------------------------
# suite 2: seeded campaigns through the full runtime
# ----------------------------------------------------------------------
@st.composite
def campaign_params(draw):
    return dict(
        preset=draw(st.sampled_from(sorted(PRESETS))),
        scheduler=draw(st.sampled_from(SCHEDULERS)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        num_tasks=draw(st.integers(min_value=4, max_value=32)),
        timesteps=draw(st.integers(min_value=1, max_value=3)),
        imbalance=draw(st.sampled_from(["uniform", "linear", "clustered"])),
        noisy=draw(st.booleans()),
    )


def _run_campaign(engine: str, params: dict):
    app = make_synthetic(
        work_seconds=0.05,
        mem_frac=0.6,
        gamma=0.8,
        imbalance=params["imbalance"],
        imbalance_cv=0.3,
        num_tasks=params["num_tasks"],
        total_iters=params["num_tasks"] * 4,
        region_mib=32,
        timesteps=params["timesteps"],
    )
    runtime = OpenMPRuntime(
        PRESETS[params["preset"]](),
        params["scheduler"],
        seed=params["seed"],
        trace=True,
        engine=engine,
        noise=(
            NoiseParams(mean_interval=0.01, mean_duration=0.004)
            if params["noisy"]
            else None
        ),
    )
    result = runtime.run_application(app)
    return runtime.last_ctx, result


@settings(max_examples=60, deadline=None)
@given(campaign_params())
def test_campaign_byte_identical(params):
    """Whole applications (timestep loops, serial phases, noise): the two
    engines produce the same run, bit for bit."""
    ctx_ref, res_ref = _run_campaign("reference", params)
    ctx_inc, res_inc = _run_campaign("incremental", params)
    assert_results_identical(res_ref, res_inc)
    assert_contexts_identical(ctx_ref, ctx_inc)


# ----------------------------------------------------------------------
# suite 2b: dynamic-asymmetry campaigns (DVFS / throttle / co-tenant /
# core-offline timelines through the speed-mutation choke point)
# ----------------------------------------------------------------------
@st.composite
def asym_campaign_params(draw):
    return dict(
        preset=draw(st.sampled_from(sorted(PRESETS))),
        scheduler=draw(st.sampled_from(SCHEDULERS + ("ilan-adaptive",))),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        num_tasks=draw(st.integers(min_value=4, max_value=24)),
        timesteps=draw(st.integers(min_value=1, max_value=3)),
        asym=draw(st.sampled_from(sorted(ASYMMETRY_PRESETS))),
        asym_seed=draw(st.one_of(st.none(), st.integers(0, 100))),
        noisy=draw(st.booleans()),
    )


def _run_asym_campaign(engine: str, params: dict):
    app = make_synthetic(
        work_seconds=0.05,
        mem_frac=0.6,
        gamma=0.8,
        num_tasks=params["num_tasks"],
        total_iters=params["num_tasks"] * 4,
        region_mib=32,
        timesteps=params["timesteps"],
    )
    runtime = OpenMPRuntime(
        PRESETS[params["preset"]](),
        params["scheduler"],
        seed=params["seed"],
        trace=True,
        engine=engine,
        noise=(
            NoiseParams(mean_interval=0.01, mean_duration=0.004)
            if params["noisy"]
            else None
        ),
        asym=ASYMMETRY_PRESETS[params["asym"]],
        asym_seed=params["asym_seed"],
    )
    result = runtime.run_application(app)
    return runtime.last_ctx, result


@settings(max_examples=60, deadline=None)
@given(asym_campaign_params())
def test_asym_campaign_byte_identical(params):
    """Seeded asymmetry timelines — every preset, all schedulers (incl.
    the drift-re-exploring one), noise on top: the incremental engine must
    track every mid-run speed mutation and offline flip bit for bit."""
    ctx_ref, res_ref = _run_asym_campaign("reference", params)
    ctx_inc, res_inc = _run_asym_campaign("incremental", params)
    assert_results_identical(res_ref, res_inc)
    assert_contexts_identical(ctx_ref, ctx_inc)


def test_offline_while_core_occupied_byte_identical():
    """The hardest asymmetry case pinned explicitly: a core goes offline
    *while running a task* (frozen in place, resumed on re-online), with
    long outages relative to task length so the executor's wait path and
    the incremental engine's zeroed demand rows are both exercised."""
    spec = AsymmetrySpec(
        offline_interval=0.02, offline_duration=0.5, max_offline_fraction=0.45
    )
    per_engine = []
    for engine in ("reference", "incremental"):
        app = make_synthetic(
            work_seconds=0.2,
            mem_frac=0.6,
            gamma=0.8,
            num_tasks=8,
            total_iters=32,
            region_mib=32,
            timesteps=2,
        )
        runtime = OpenMPRuntime(
            tiny_two_node(),
            "baseline",  # keeps every core occupied: outages hit busy cores
            seed=11,
            trace=True,
            engine=engine,
            asym=spec,
        )
        result = runtime.run_application(app)
        ctx = runtime.last_ctx
        assert ctx.asym is not None and ctx.asym.offline_episodes >= 1
        per_engine.append((ctx, result))
    assert_results_identical(per_engine[0][1], per_engine[1][1])
    assert_contexts_identical(per_engine[0][0], per_engine[1][0])


# ----------------------------------------------------------------------
# suite 3: lease-constrained runs through the experiment layer
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed_index=st.integers(min_value=0, max_value=50),
    lease=st.sampled_from([0b01, 0b10, 0b11, None]),
    timesteps=st.integers(min_value=1, max_value=2),
)
def test_leased_spec_byte_identical(seed_index, lease, timesteps):
    """RunSpec execution (the cache/service path), with and without a
    NUMA-node lease confining the scheduler."""
    results = []
    for engine in ("reference", "incremental"):
        spec = RunSpec(
            benchmark="matmul",
            scheduler="ilan",
            seed=derive_run_seed("matmul", "ilan", seed_index),
            timesteps=timesteps,
            noise=None,
            topology=dual_socket_small(),
            lease_bits=lease,
            engine=engine,
        )
        results.append(execute_spec(spec))
    assert_results_identical(results[0], results[1])


# ----------------------------------------------------------------------
# suite 4: fault-injected campaigns (transient failures + retry)
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed_count=st.integers(min_value=1, max_value=3),
    failures=st.integers(min_value=1, max_value=2),
)
def test_faulted_runs_byte_identical(seed_count, failures):
    """Transient runner faults + the retry a service worker would issue:
    the recomputed results match the reference engine bit for bit."""
    per_engine = []
    for engine in ("reference", "incremental"):
        cfg = ExperimentConfig(
            seeds=seed_count, timesteps=1, with_noise=True, engine=engine
        )
        runner = Runner(cfg, topology=tiny_two_node())
        specs = runner.job_specs("matmul", "ilan", seeds=seed_count)
        remaining = [failures]

        def hook(_specs):
            if remaining[0] > 0:
                remaining[0] -= 1
                raise TransientRunnerError("injected fault")

        attempts = 0
        while True:
            attempts += 1
            try:
                results = runner.run_specs(specs, fault_hook=hook)
                break
            except TransientRunnerError:
                assert attempts <= failures  # must not fail forever
        per_engine.append(results)
    assert len(per_engine[0]) == len(per_engine[1]) == seed_count
    for r1, r2 in zip(per_engine[0], per_engine[1]):
        assert_results_identical(r1, r2)
