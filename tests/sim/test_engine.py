"""Unit tests for the clock and event queue."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Clock, EventQueue, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance(self):
        c = Clock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_to(self):
        c = Clock()
        c.advance_to(3.0)
        assert c.now == 3.0
        c.advance_to(3.0)  # idempotent
        assert c.now == 3.0

    def test_no_negative_advance(self):
        c = Clock()
        with pytest.raises(SimulationError):
            c.advance(-1.0)
        with pytest.raises(SimulationError):
            c.advance(math.nan)

    def test_no_time_travel(self):
        c = Clock(start=5.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)

    def test_bad_start(self):
        with pytest.raises(SimulationError):
            Clock(start=-1.0)


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        for ev in q.pop_due(2.5):
            ev.action()
        assert fired == ["a", "b"]
        assert q.next_time() == 3.0

    def test_stable_for_ties(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(1.0, lambda: fired.append(2))
        for ev in q.pop_due(1.0):
            ev.action()
        assert fired == [1, 2]

    def test_cancel(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        ev.cancel()
        assert q.is_empty()
        assert q.next_time() == math.inf
        assert q.pop_due(5.0) == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        a = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        a.cancel()
        assert len(q) == 1

    def test_empty_next_time(self):
        assert EventQueue().next_time() == math.inf

    def test_rejects_bad_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            q.schedule(math.inf, lambda: None)


class TestSimulator:
    def test_schedule_in_and_run_due(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append("x"))
        sim.clock.advance(1.0)
        assert sim.run_due_events() == 1
        assert fired == ["x"]

    def test_events_not_due_stay(self):
        sim = Simulator()
        sim.schedule_in(2.0, lambda: None)
        sim.clock.advance(1.0)
        assert sim.run_due_events() == 0
        assert len(sim.events) == 1

    def test_bump_counters(self):
        sim = Simulator()
        sim.bump("steals")
        sim.bump("steals", 2)
        assert sim.stats["steals"] == 3
