"""Unit tests for the clock and event queue."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Clock, EventQueue, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance(self):
        c = Clock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_to(self):
        c = Clock()
        c.advance_to(3.0)
        assert c.now == 3.0
        c.advance_to(3.0)  # idempotent
        assert c.now == 3.0

    def test_no_negative_advance(self):
        c = Clock()
        with pytest.raises(SimulationError):
            c.advance(-1.0)
        with pytest.raises(SimulationError):
            c.advance(math.nan)

    def test_no_time_travel(self):
        c = Clock(start=5.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)

    def test_advance_to_tolerates_ulp_noise_at_large_now(self):
        # regression (DET003 audit): the backwards guard used an absolute
        # 1e-12 epsilon, so at now=1e6 a target a few ulps below now
        # (accumulated-float noise, ~1.2e-10 off) spuriously raised
        now = 1e6
        c = Clock(start=now)
        almost_now = math.nextafter(now, 0.0)
        assert almost_now < now  # genuinely below, beyond 1e-12 absolute
        assert now - almost_now > 1e-12
        assert c.advance_to(almost_now) == now  # clamps, no raise

    def test_advance_to_still_rejects_genuine_backwards_at_large_now(self):
        c = Clock(start=1e6)
        with pytest.raises(SimulationError):
            c.advance_to(1e6 - 0.5)

    def test_bad_start(self):
        with pytest.raises(SimulationError):
            Clock(start=-1.0)


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        for ev in q.pop_due(2.5):
            ev.action()
        assert fired == ["a", "b"]
        assert q.next_time() == 3.0

    def test_stable_for_ties(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(1.0, lambda: fired.append(2))
        for ev in q.pop_due(1.0):
            ev.action()
        assert fired == [1, 2]

    def test_cancel(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        ev.cancel()
        assert q.is_empty()
        assert q.next_time() == math.inf
        assert q.pop_due(5.0) == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        a = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        a.cancel()
        assert len(q) == 1

    def test_empty_next_time(self):
        assert EventQueue().next_time() == math.inf

    def test_rejects_bad_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            q.schedule(math.inf, lambda: None)


class TestSimulator:
    def test_schedule_in_and_run_due(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append("x"))
        sim.clock.advance(1.0)
        assert sim.run_due_events() == 1
        assert fired == ["x"]

    def test_events_not_due_stay(self):
        sim = Simulator()
        sim.schedule_in(2.0, lambda: None)
        sim.clock.advance(1.0)
        assert sim.run_due_events() == 0
        assert len(sim.events) == 1

    def test_bump_counters(self):
        sim = Simulator()
        sim.bump("steals")
        sim.bump("steals", 2)
        assert sim.stats["steals"] == 3


class TestDueTolerance:
    def test_same_time_event_fires_at_large_now(self):
        # regression: an absolute epsilon (now + 1e-15) is swallowed by
        # float spacing once `now` is large; the relative tolerance must
        # still treat an accumulated-equal timestamp as due
        q = EventQueue()
        now = 1e6
        t = 0.0
        for _ in range(10):  # accumulate to ~1e6 with rounding error
            t += now / 10
        q.schedule(t, lambda: None)
        assert len(q.pop_due(now)) == 1

    def test_tolerance_is_relative_not_absolute(self):
        from repro.sim.engine import DUE_REL_TOL

        q = EventQueue()
        now = 1e9
        q.schedule(now * (1.0 + DUE_REL_TOL / 2), lambda: None)  # within tol
        assert len(q.pop_due(now)) == 1
        q.schedule(now * (1.0 + DUE_REL_TOL * 10), lambda: None)  # beyond tol
        assert q.pop_due(now) == []
        assert len(q) == 1

    def test_tiny_times_still_compare_exactly(self):
        q = EventQueue()
        q.schedule(1e-16, lambda: None)  # abs_tol floor keeps ~0 times due
        assert len(q.pop_due(0.0)) == 1

    def test_future_events_still_held_back(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        assert q.pop_due(1.0) == []
        assert len(q.pop_due(2.0)) == 1


class TestLiveCounter:
    def test_len_tracks_schedule_and_pop(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda: None)
        assert len(q) == 5
        q.pop_due(2.0)  # pops 0, 1, 2
        assert len(q) == 2
        q.pop_due(10.0)
        assert len(q) == 0
        assert q.is_empty()

    def test_cancel_decrements_once(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1
        ev.cancel()  # double-cancel must not decrement again
        assert len(q) == 1

    def test_cancelled_events_are_skipped_by_pop(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("dead"))
        q.schedule(1.0, lambda: fired.append("live"))
        ev.cancel()
        popped = q.pop_due(1.0)
        assert len(popped) == 1
        for e in popped:
            e.action()
        assert fired == ["live"]
        assert len(q) == 0

    def test_cancel_after_pop_is_harmless(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        (ev,) = q.pop_due(1.0)
        ev.cancel()  # already popped: must not corrupt the live count
        assert len(q) == 0
        q.schedule(2.0, lambda: None)
        assert len(q) == 1

    def test_len_is_constant_time_bookkeeping(self):
        # heap may still physically hold cancelled entries; __len__ must
        # report only live ones without scanning
        q = EventQueue()
        events = [q.schedule(float(i), lambda: None) for i in range(100)]
        for ev in events[::2]:
            ev.cancel()
        assert len(q) == 50
        assert len(q._heap) == 100  # lazily-deleted entries remain
