"""Unit tests for the service wire protocol and job model."""

import asyncio

import pytest

from repro.serve.protocol import (
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    LeaseError,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    raise_for_error,
    read_message,
)


# ----------------------------------------------------------------------
# JobRequest
# ----------------------------------------------------------------------
def test_request_wire_round_trip():
    req = JobRequest(benchmark="matmul", scheduler="ilan", seeds=3,
                     timesteps=7, nodes=2, tenant="alice")
    assert JobRequest.from_wire(req.to_wire()) == req


def test_request_defaults_fill_in():
    req = JobRequest.from_wire({"benchmark": "ft"})
    assert req.scheduler == "ilan"
    assert req.seeds == 1
    assert req.timesteps is None
    assert req.nodes == 1
    assert req.tenant == "anon"


def test_request_rejects_unknown_fields():
    with pytest.raises(ProtocolError, match="unknown job request field"):
        JobRequest.from_wire({"benchmark": "ft", "priority": 9})


@pytest.mark.parametrize(
    "bad",
    [
        {},  # missing benchmark
        {"benchmark": ""},
        {"benchmark": "ft", "seeds": 0},
        {"benchmark": "ft", "seeds": "three"},
        {"benchmark": "ft", "timesteps": 0},
        {"benchmark": "ft", "nodes": 0},
        {"benchmark": "ft", "nodes": 1.5},
        {"benchmark": "ft", "tenant": ""},
    ],
)
def test_request_validation_rejects(bad):
    with pytest.raises(ProtocolError):
        JobRequest.from_wire(bad)


def test_request_from_wire_rejects_non_mapping():
    with pytest.raises(ProtocolError, match="must be an object"):
        JobRequest.from_wire(["benchmark", "ft"])


# ----------------------------------------------------------------------
# JobState / JobRecord
# ----------------------------------------------------------------------
def test_terminal_states():
    assert not JobState.QUEUED.terminal
    assert not JobState.RUNNING.terminal
    assert JobState.COMPLETED.terminal
    assert JobState.FAILED.terminal


def test_record_latency_only_when_finished():
    rec = JobRecord(job_id="job-1", request=JobRequest(benchmark="ft"),
                    submitted_at=10.0)
    assert rec.latency is None
    rec.finished_at = 12.5
    assert rec.latency == pytest.approx(2.5)


def test_record_to_wire_is_json_plain():
    rec = JobRecord(job_id="job-1", request=JobRequest(benchmark="ft"),
                    state=JobState.RUNNING, lease_nodes=[0, 1])
    wire = rec.to_wire()
    assert wire["state"] == "running"
    assert wire["lease_nodes"] == [0, 1]
    assert wire["request"]["benchmark"] == "ft"


# ----------------------------------------------------------------------
# line codec
# ----------------------------------------------------------------------
def test_codec_round_trip():
    msg = {"op": "submit", "job": {"benchmark": "ft"}}
    line = encode_message(msg)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert decode_message(line) == msg


@pytest.mark.parametrize("garbage", [b"not json\n", b"\xff\xfe\n", b"[1,2]\n"])
def test_decode_rejects_garbage(garbage):
    with pytest.raises(ProtocolError):
        decode_message(garbage)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_read_message_clean_eof_returns_none():
    async def run():
        return await read_message(_reader_with(b""))

    assert asyncio.run(run()) is None


def test_read_message_partial_line_is_error():
    async def run():
        await read_message(_reader_with(b'{"op": "ping"'))

    with pytest.raises(ProtocolError, match="mid-message"):
        asyncio.run(run())


def test_read_message_oversize_line_is_error():
    # longer than the StreamReader's default 64 KiB limit
    huge = b'{"pad": "' + b"x" * (1 << 17) + b'"}\n'

    async def run():
        await read_message(_reader_with(huge))

    with pytest.raises(ProtocolError, match="size limit"):
        asyncio.run(run())


def test_read_message_sequences_lines():
    async def run():
        reader = _reader_with(encode_message({"a": 1}) + encode_message({"b": 2}))
        return await read_message(reader), await read_message(reader), await read_message(reader)

    first, second, third = asyncio.run(run())
    assert (first, second, third) == ({"a": 1}, {"b": 2}, None)


# ----------------------------------------------------------------------
# response envelopes
# ----------------------------------------------------------------------
def test_ok_passthrough():
    resp = ok_response(job_id="job-1")
    assert raise_for_error(resp) == {"ok": True, "job_id": "job-1"}


def test_queue_full_reconstructs_admission_rejected():
    resp = error_response("queue_full", "saturated", depth=4, capacity=4)
    with pytest.raises(AdmissionRejected) as exc_info:
        raise_for_error(resp)
    exc = exc_info.value
    assert exc.code == "queue_full"
    assert (exc.depth, exc.capacity) == (4, 4)


def test_draining_reconstructs_admission_rejected():
    with pytest.raises(AdmissionRejected) as exc_info:
        raise_for_error(error_response("draining", "bye"))
    assert exc_info.value.code == "draining"


def test_lease_error_reconstructs():
    with pytest.raises(LeaseError):
        raise_for_error(error_response("lease_error", "double grant"))


def test_unknown_code_becomes_protocol_error():
    with pytest.raises(ProtocolError, match="boom"):
        raise_for_error(error_response("internal", "boom"))


def test_malformed_error_object():
    with pytest.raises(ProtocolError, match="malformed"):
        raise_for_error({"ok": False, "error": "just a string"})


# ----------------------------------------------------------------------
# deadlines and attempt history on the wire
# ----------------------------------------------------------------------
def test_request_deadline_round_trip():
    req = JobRequest(benchmark="matmul", deadline_s=2.5)
    wire = req.to_wire()
    assert wire["deadline_s"] == 2.5
    assert JobRequest.from_wire(wire) == req
    # absent and null both mean "no deadline"
    assert JobRequest.from_wire({"benchmark": "ft"}).deadline_s is None
    assert JobRequest.from_wire({"benchmark": "ft", "deadline_s": None}).deadline_s is None
    # integers coerce to float
    assert JobRequest.from_wire({"benchmark": "ft", "deadline_s": 3}).deadline_s == 3.0


@pytest.mark.parametrize("bad", [0.0, -1.0, "soon", True, float("nan")])
def test_request_rejects_bad_deadline(bad):
    with pytest.raises(ProtocolError):
        JobRequest.from_wire({"benchmark": "ft", "deadline_s": bad})


def test_record_attempt_history_on_the_wire():
    rec = JobRecord(job_id="j1", request=JobRequest(benchmark="ft"),
                    submitted_at=1.0)
    rec.record_attempt_failure("WorkerCrashed: boom", started_at=1.5, failed_at=2.0)
    rec.record_attempt_failure("TransientRunnerError: blip",
                               started_at=2.5, failed_at=3.0)
    assert rec.attempts == 2
    wire = rec.to_wire()
    assert wire["attempts"] == 2
    assert [a["attempt"] for a in wire["attempt_history"]] == [1, 2]
    assert "WorkerCrashed" in wire["attempt_history"][0]["error"]
    import json
    json.dumps(wire)  # stays JSON-plain
