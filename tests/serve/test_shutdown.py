"""Signal-driven shutdown: drain, then a final atomic metrics snapshot.

The contract under test (see ``repro.serve.__main__``): SIGTERM (and
SIGINT) drain the service — admitted jobs finish, new submissions are
rejected — and ``--snapshot-out`` then persists one final JSON snapshot
via an atomic tmp-file + rename write.  The snapshot must *conserve*:
every submitted job is accounted as completed or failed, with nothing
left active or queued after a drain.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exp.runner import ExperimentConfig
from repro.serve.protocol import JobRequest
from repro.serve.server import SchedulingService
from repro.topology.presets import dual_socket_small

TIMEOUT = 60


def _service(**kwargs):
    kwargs.setdefault(
        "config",
        ExperimentConfig(seeds=1, timesteps=3, with_noise=False, jobs=1, cache_dir=None),
    )
    return SchedulingService(dual_socket_small(), **kwargs)


def assert_conserves(snapshot: dict) -> None:
    """The snapshot's job ledger balances and nothing is in flight."""
    jobs = snapshot["jobs"]
    assert jobs["submitted"] == (
        jobs["completed"] + jobs["failed"] + jobs["active"] + jobs["queued"]
    )
    assert jobs["active"] == 0
    assert jobs["queued"] == 0


class TestPersistSnapshot:
    def test_drained_snapshot_conserves_job_counts(self, tmp_path):
        async def scenario():
            service = _service()
            await service.start()
            for _ in range(4):
                service.submit(JobRequest(benchmark="matmul", timesteps=3, nodes=1))
            await service.drain()
            return service.persist_snapshot(tmp_path / "metrics.json")

        out = asyncio.run(scenario())
        snapshot = json.loads(out.read_text())
        assert_conserves(snapshot)
        assert snapshot["jobs"]["submitted"] == 4
        assert snapshot["jobs"]["completed"] == 4
        assert snapshot["service"]["draining"] is True

    def test_persist_is_atomic_no_temp_debris(self, tmp_path):
        async def scenario():
            service = _service()
            await service.start()
            await service.drain()
            return service.persist_snapshot(tmp_path / "metrics.json")

        out = asyncio.run(scenario())
        assert json.loads(out.read_text())  # parseable, non-empty
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]


class TestSigterm:
    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigterm_drains_and_persists_snapshot(self, tmp_path):
        """A live ``python -m repro.serve`` process, SIGTERMed, exits 0
        after writing a conserving snapshot."""
        snap = tmp_path / "final.json"
        env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--machine", "tiny",
             "--port", "0", "--no-noise", "--no-cache",
             "--snapshot-out", str(snap)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            deadline = time.monotonic() + TIMEOUT
            for line in proc.stdout:
                if "listening on" in line:
                    break
                assert time.monotonic() < deadline, "server never came up"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=TIMEOUT)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, out
        assert "draining" in out
        assert snap.exists(), out
        assert_conserves(json.loads(snap.read_text()))
