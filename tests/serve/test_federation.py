"""Tests for the federation tier: ring placement, affinity, shard death,
saturation rebalance, the wire front-end, and seeded reproducibility.

The scenarios mirror the single-machine service suite one level up:
N in-process shards behind a router, driven both directly (router API)
and over TCP (the federation speaks the same newline-JSON protocol).
"""

import asyncio
import json

import pytest

from repro.exp.runner import ExperimentConfig
from repro.serve.client import ServiceClient
from repro.serve.federation import (
    AffinityPolicy,
    FederationRouter,
    FederationService,
    ShardFaultPlan,
    build_shards,
    shard_fault_seed,
)
from repro.serve.protocol import AdmissionRejected, JobRequest, ProtocolError
from repro.serve.server import SchedulingService
from repro.topology.presets import dual_socket_small

TIMEOUT = 60


def _fast_config(**overrides):
    base = dict(seeds=1, timesteps=3, with_noise=False, jobs=1, cache_dir=None)
    base.update(overrides)
    return ExperimentConfig(**base)


def _fleet(count=3, **kwargs):
    kwargs.setdefault("config", _fast_config())
    kwargs.setdefault("queue_capacity", 64)
    kwargs.setdefault("workers", 1)
    return build_shards(count, dual_socket_small, **kwargs)


def _request(tenant, **overrides):
    base = dict(benchmark="cg", seeds=1, timesteps=3, tenant=tenant)
    base.update(overrides)
    return JobRequest(**base)


def _assert_conserved(snapshot):
    for shard_id, shard in snapshot["shards"].items():
        jobs = shard["jobs"]
        assert jobs["submitted"] == (
            jobs["completed"] + jobs["failed"] + jobs["active"]
            + jobs["queued"] + jobs["evicted"]
        ), (shard_id, jobs)


# ----------------------------------------------------------------------
# placement: ring + affinity
# ----------------------------------------------------------------------
def test_placement_is_deterministic_and_tenant_sticky():
    async def run():
        router = FederationRouter(_fleet(), seed=7)
        jobs = [await router.submit(_request(f"t{i % 4}")) for i in range(12)]
        # a tenant's later jobs land on the shard of its first placement
        first = {}
        for job in jobs:
            first.setdefault(job.tenant, job.shard_id)
            assert job.shard_id == first[job.tenant]
        assert router.placements == 12
        assert router.failover_placements == 0
        # the home matches the ring owner: nothing was saturated or dead
        for tenant, home in first.items():
            assert router.ring.owner(tenant) == home
        await router.start()
        await router.drain()
        return [job.shard_id for job in jobs]

    assert asyncio.run(run()) == asyncio.run(run())


def test_saturated_home_is_demoted_but_still_beats_rejection():
    async def run():
        router = FederationRouter(_fleet(3), seed=0, high_water=2)
        # pile the hot tenant past the mark without running workers
        jobs = [await router.submit(_request("hot")) for _ in range(8)]
        shards_used = {job.shard_id for job in jobs}
        assert len(shards_used) == 3, "saturation must spread the hot tenant"
        await router.start()
        await router.drain()

    asyncio.run(run())


def test_fleet_wide_queue_full_reports_summed_capacity():
    async def run():
        router = FederationRouter(_fleet(2, queue_capacity=2), seed=0)
        for i in range(4):
            await router.submit(_request(f"t{i}"))
        with pytest.raises(AdmissionRejected) as excinfo:
            await router.submit(_request("overflow"))
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.capacity == 4
        assert excinfo.value.depth == 4

    asyncio.run(run())


def test_unknown_benchmark_rejected_without_consuming_an_id():
    async def run():
        router = FederationRouter(_fleet(2), seed=0)
        with pytest.raises(ProtocolError):
            await router.submit(_request("t0", benchmark="nope"))
        assert router.placements == 0
        job = await router.submit(_request("t0"))
        assert job.fed_id == "fed-00001"

    asyncio.run(run())


# ----------------------------------------------------------------------
# shard death and recovery
# ----------------------------------------------------------------------
def test_shard_crash_requeues_orphans_and_conserves_jobs():
    async def run():
        plan = ShardFaultPlan(1.0, seed=3, min_placements=2, max_placements=2)
        router = FederationRouter(_fleet(3), seed=0, shard_fault_plan=plan)
        await router.start()
        for i in range(12):
            await router.submit(_request(f"t{i % 4}"))
        await router.drain()
        snapshot = router.metrics_snapshot()
        assert router.shard_deaths >= 1
        assert snapshot["fleet"]["dead"]
        # every submission reached a terminal state despite the deaths
        states = snapshot["router"]["job_states"]
        assert states["completed"] + states["failed"] == 12
        assert states["queued"] == states["running"] == 0
        _assert_conserved(snapshot)
        # dead shards hold no leases
        for shard_id in snapshot["fleet"]["dead"]:
            leases = snapshot["shards"][shard_id]["nodes"]["leases"]
            assert all(owner is None for owner in leases.values())
        # requeued jobs kept their fed ids and grew their placement chains
        moved = [j for j in router.jobs.values() if j.migrations > 0]
        assert moved
        for job in moved:
            assert job.placements[0] in snapshot["fleet"]["dead"]
            assert job.shard_id not in snapshot["fleet"]["dead"]
        return snapshot

    asyncio.run(run())


def test_last_live_shard_never_crashes():
    async def run():
        # every shard is fated to die at its first placement; the router
        # must still keep one alive to conserve the work
        plan = ShardFaultPlan(1.0, seed=0, min_placements=1, max_placements=1)
        router = FederationRouter(_fleet(3), seed=0, shard_fault_plan=plan)
        await router.start()
        for i in range(6):
            await router.submit(_request(f"t{i}"))
        await router.drain()
        assert len(router.live_shards) == 1
        states = router.job_states()
        assert states["completed"] + states["failed"] == 6

    asyncio.run(run())


def test_crash_forgets_affinity_homes():
    async def run():
        plan = ShardFaultPlan(1.0, seed=1, min_placements=3, max_placements=3)
        router = FederationRouter(_fleet(3), seed=0, shard_fault_plan=plan)
        await router.start()
        for i in range(9):
            await router.submit(_request(f"t{i % 3}"))
        dead = {s.shard_id for s in router.shards.values() if not s.alive}
        assert dead
        for home in router.affinity.homes().values():
            assert home not in dead
        await router.drain()

    asyncio.run(run())


# ----------------------------------------------------------------------
# saturation rebalance (migration)
# ----------------------------------------------------------------------
def test_rebalance_sheds_youngest_and_preserves_fifo_head():
    async def run():
        router = FederationRouter(_fleet(3), seed=0)
        # workers not started: depths are fully controlled
        for _ in range(10):
            await router.submit(_request("hot"))
        home = router.affinity.home_of("hot")
        deep = router.shards[home]
        oldest_local = deep.service.admission._items[0].job_id
        assert deep.depth == 10
        # arm the mark; the next placement's fleet scan must shed
        router.high_water = 3
        await router.submit(_request("hot"))
        assert router.migrations > 0
        assert all(s.depth <= 10 for s in router.live_shards)
        # strict FIFO: the deep shard kept its oldest waiter at the head
        assert deep.service.admission._items[0].job_id == oldest_local
        # evicted jobs kept stable fed ids, now mapped to other shards
        moved = [j for j in router.jobs.values() if j.migrations > 0]
        assert len(moved) == router.migrations
        for job in moved:
            assert job.placements[0] == home
            assert job.shard_id != home
        await router.start()
        await router.drain()
        snapshot = router.metrics_snapshot()
        states = snapshot["router"]["job_states"]
        assert states["completed"] == 11
        _assert_conserved(snapshot)

    asyncio.run(run())


def test_rebalance_needs_a_relief_shard():
    async def run():
        router = FederationRouter(_fleet(2, queue_capacity=64), seed=0,
                                  high_water=2)
        # both shards end up at/above the mark: shedding would just move
        # saturation around the ring, so the router must not churn
        for i in range(8):
            await router.submit(_request(f"t{i % 4}"))
        assert router.migrations == 0
        await router.start()
        await router.drain()

    asyncio.run(run())


# ----------------------------------------------------------------------
# the wire front-end
# ----------------------------------------------------------------------
def test_federation_speaks_the_existing_protocol_over_tcp():
    async def run():
        service = FederationService(FederationRouter(_fleet(3), seed=0))
        host, port = await service.start("127.0.0.1", 0)
        async with await ServiceClient.connect(host, port) as cli:
            pong = await cli.ping()
            assert pong["federation"] is True
            assert len(pong["fleet"]) == 3
            job_id = await cli.submit(_request("alice"))
            assert job_id.startswith("fed-")
            job = await cli.wait(job_id, timeout=TIMEOUT)
            assert job["state"] == "completed"
            assert job["job_id"] == job_id
            assert job["shard"] in {"shard-0", "shard-1", "shard-2"}
            assert job["placements"] == [job["shard"]]
            metrics = await cli.metrics()
            assert metrics["router"]["submitted"] == 1
            assert metrics["jobs"][job_id]["state"] == "completed"
        async with await ServiceClient.connect(host, port) as cli:
            snapshot = await cli.drain()
        _assert_conserved(snapshot)
        # post-drain: submissions bounce with the typed draining error
        with pytest.raises(AdmissionRejected) as excinfo:
            await FederationRouter.submit(service.router, _request("late"))
        assert excinfo.value.code == "draining"

    asyncio.run(run())


def test_unknown_fed_job_id_is_a_protocol_error():
    async def run():
        router = FederationRouter(_fleet(2), seed=0)
        with pytest.raises(ProtocolError):
            router.status("fed-99999")

    asyncio.run(run())


# ----------------------------------------------------------------------
# seeded reproducibility
# ----------------------------------------------------------------------
def _canonical_chaos_run():
    async def run():
        plan = ShardFaultPlan(0.5, seed=11)
        router = FederationRouter(
            _fleet(4), seed=3, high_water=None, shard_fault_plan=plan
        )
        await router.start()
        for i in range(20):
            await router.submit(_request(f"t{i % 5}"))
        await router.drain()
        snapshot = router.metrics_snapshot()
        canon = {
            "placements": router.placements,
            "shard_deaths": router.shard_deaths,
            "requeued_jobs": router.requeued_jobs,
            "dead": snapshot["fleet"]["dead"],
            "jobs": {
                fed_id: {
                    "tenant": job["tenant"],
                    "shard": job["shard"],
                    "placements": job["placements"],
                    "state": job["state"],
                }
                for fed_id, job in snapshot["jobs"].items()
            },
        }
        return json.dumps(canon, sort_keys=True)

    return asyncio.run(run())


def test_same_seed_chaos_runs_are_byte_identical():
    assert _canonical_chaos_run() == _canonical_chaos_run()


def test_shard_fault_seeds_are_distinct_per_shard():
    assert shard_fault_seed(0, "shard-0") != shard_fault_seed(0, "shard-1")
    assert shard_fault_seed(0, "shard-0") != shard_fault_seed(1, "shard-0")
    assert shard_fault_seed(5, "shard-2") == shard_fault_seed(5, "shard-2")


def test_shard_fault_plan_is_memoised_and_validated():
    plan = ShardFaultPlan(1.0, seed=0, min_placements=2, max_placements=2)
    assert plan.decide("shard-0") == 2
    assert plan.decide("shard-0") == 2
    assert not plan.should_crash("shard-0", 1)
    assert plan.should_crash("shard-0", 2)
    with pytest.raises(Exception):
        ShardFaultPlan(1.5)
    with pytest.raises(Exception):
        ShardFaultPlan(0.5, min_placements=0)
    with pytest.raises(Exception):
        ShardFaultPlan(0.5, min_placements=3, max_placements=2)


# ----------------------------------------------------------------------
# affinity policy unit behaviour
# ----------------------------------------------------------------------
def test_affinity_order_prefers_unsaturated_home():
    policy = AffinityPolicy()
    ring_order = ["b", "a", "c"]
    alive = {"a", "b", "c"}
    # no home yet: pure ring order
    assert policy.order("t", ring_order, alive=alive) == ["b", "a", "c"]
    policy.note_placement("t", "c")
    assert policy.order("t", ring_order, alive=alive) == ["c", "b", "a"]
    # saturated home drops behind the unsaturated shards but stays first
    # among the saturated tail
    assert policy.order("t", ring_order, alive=alive, saturated={"c", "b"}) == [
        "a", "c", "b",
    ]
    # dead home vanishes entirely
    assert policy.order("t", ring_order, alive={"a", "b"}) == ["b", "a"]


def test_affinity_forget_shard_reports_affected_tenants():
    policy = AffinityPolicy()
    policy.note_placement("t1", "a")
    policy.note_placement("t2", "a")
    policy.note_placement("t3", "b")
    assert policy.forget_shard("a") == ["t1", "t2"]
    assert policy.homes() == {"t3": "b"}
    assert policy.forget_shard("a") == []


# ----------------------------------------------------------------------
# the serve-core extensions federation rides on
# ----------------------------------------------------------------------
def test_service_adopt_and_evict_conserve_with_evicted_counter():
    async def run():
        donor = SchedulingService(
            dual_socket_small(), config=_fast_config(), queue_capacity=8
        )
        taker = SchedulingService(
            dual_socket_small(), config=_fast_config(), queue_capacity=8
        )
        for i in range(4):
            donor.submit(_request(f"t{i}"))
        evicted = donor.evict_queued(2)
        assert [r.job_id for r in evicted] == ["job-00004", "job-00003"]
        assert all(r.job_id not in donor.records for r in evicted)
        for record in evicted:
            adopted = taker.adopt(record.request)
            assert adopted.job_id in taker.records
        donor.start_workers()
        taker.start_workers()
        d = await donor.drain()
        t = await taker.drain()
        assert d["jobs"]["submitted"] == 4
        assert d["jobs"]["evicted"] == 2
        assert d["jobs"]["completed"] == 2
        assert t["jobs"]["submitted"] == 2
        assert t["jobs"]["completed"] == 2
        for jobs in (d["jobs"], t["jobs"]):
            assert jobs["submitted"] == (
                jobs["completed"] + jobs["failed"] + jobs["active"]
                + jobs["queued"] + jobs["evicted"]
            )

    asyncio.run(run())


def test_service_kill_reclaims_leases_and_bounces_new_work():
    async def run():
        service = SchedulingService(
            dual_socket_small(), config=_fast_config(), queue_capacity=8,
            workers=1,
        )
        service.start_workers()
        for i in range(3):
            service.submit(_request(f"t{i}"))
        await asyncio.sleep(0)  # let a worker take the first job
        orphans = await service.kill()
        assert orphans  # something was in flight or queued
        leases = service.arbiter.ledger.lease_map()
        assert all(owner is None for owner in leases.values())
        with pytest.raises(AdmissionRejected):
            service.submit(_request("late"))

    asyncio.run(run())
