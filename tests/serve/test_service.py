"""End-to-end tests of the multi-tenant scheduling service.

Covers the PR's acceptance scenario: three concurrent clients submit four
jobs each over the wire; every job completes; jobs whose lease-held
periods overlap in time hold pairwise-disjoint NUMA-node leases; a
saturated admission queue rejects with the typed error (and never
deadlocks); the metrics snapshot accounts for every submitted job; and a
graceful drain leaves zero pending jobs.
"""

import asyncio
import time

import pytest

from repro.exp.runner import ExperimentConfig
from repro.serve.client import ServiceClient
from repro.serve.protocol import AdmissionRejected, JobRequest, JobState, ProtocolError
from repro.serve.server import SchedulingService
from repro.topology.presets import dual_socket_small

TIMEOUT = 60  # generous hang guard; the whole module runs in seconds


def _fast_config(**overrides):
    base = dict(seeds=1, timesteps=3, with_noise=False, jobs=1, cache_dir=None)
    base.update(overrides)
    return ExperimentConfig(**base)


def _service(**kwargs):
    kwargs.setdefault("config", _fast_config())
    return SchedulingService(dual_socket_small(), **kwargs)


def _spy_on_leases(service):
    """Record every (held-from, held-until, nodes) lease interval.

    The recorded interval is a subset of the real held period (recorded
    after the grant, before the release), so any overlap between recorded
    intervals is a true concurrency witness.
    """
    intervals = []
    held = {}
    real_acquire, real_release = service.arbiter.acquire, service.arbiter.release

    async def acquire(job_id, nodes_wanted, preferred=None):
        mask = await real_acquire(job_id, nodes_wanted, preferred=preferred)
        held[job_id] = (time.monotonic(), mask.indices())
        return mask

    async def release(job_id):
        t0, nodes = held.pop(job_id)
        intervals.append({"job_id": job_id, "start": t0,
                          "end": time.monotonic(), "nodes": nodes})
        return await real_release(job_id)

    service.arbiter.acquire = acquire
    service.arbiter.release = release
    return intervals


# ----------------------------------------------------------------------
# the acceptance scenario, over TCP
# ----------------------------------------------------------------------
def test_three_clients_four_jobs_each_all_complete_with_disjoint_leases():
    async def run():
        service = _service(workers=4)
        intervals = _spy_on_leases(service)
        host, port = await service.start("127.0.0.1", 0)

        async def client(tenant):
            jobs = []
            async with await ServiceClient.connect(host, port) as cli:
                for _ in range(4):
                    job_id = await cli.submit(
                        JobRequest(benchmark="matmul", seeds=1, timesteps=3,
                                   nodes=2, tenant=tenant)
                    )
                    jobs.append(await cli.wait(job_id, timeout=TIMEOUT))
            return jobs

        per_client = await asyncio.wait_for(
            asyncio.gather(*(client(f"tenant-{i}") for i in range(3))),
            timeout=TIMEOUT,
        )
        jobs = [job for batch in per_client for job in batch]

        # every one of the 12 jobs completed, on a 2-node lease
        assert len(jobs) == 12
        assert all(job["state"] == "completed" for job in jobs)
        assert all(len(job["lease_nodes"]) == 2 for job in jobs)
        machine_nodes = set(range(service.topology.num_nodes))
        assert all(set(job["lease_nodes"]) <= machine_nodes for job in jobs)

        # time-overlapping lease holds are pairwise node-disjoint
        overlaps = 0
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                if a["start"] < b["end"] and b["start"] < a["end"]:
                    overlaps += 1
                    assert not (set(a["nodes"]) & set(b["nodes"])), (
                        f"overlapping jobs {a['job_id']} and {b['job_id']} "
                        f"share nodes"
                    )
        # with 4 workers on a 4-node machine and 2-node jobs, at least two
        # jobs must actually have run concurrently
        assert overlaps > 0

        # graceful drain over the wire: zero pending jobs afterwards
        async with await ServiceClient.connect(host, port) as cli:
            snapshot = await asyncio.wait_for(cli.drain(), timeout=TIMEOUT)
        jobs_m = snapshot["jobs"]
        assert jobs_m["submitted"] == 12
        assert jobs_m["completed"] == 12
        assert jobs_m["failed"] == 0
        assert (jobs_m["active"], jobs_m["queued"]) == (0, 0)
        # conservation: every submitted job is accounted for
        assert jobs_m["submitted"] == (jobs_m["completed"] + jobs_m["failed"]
                                       + jobs_m["active"] + jobs_m["queued"])
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["per_job"].keys() == {job["job_id"] for job in jobs}
        assert all(v is None for v in snapshot["nodes"]["leases"].values())
        assert snapshot["nodes"]["waiting_for_lease"] == []

    asyncio.run(run())


# ----------------------------------------------------------------------
# saturation and drain backpressure
# ----------------------------------------------------------------------
def test_saturated_queue_rejects_typed_and_never_deadlocks():
    async def run():
        service = _service(queue_capacity=2, workers=1)
        req = JobRequest(benchmark="matmul", seeds=1, timesteps=3, nodes=1)
        # workers not started yet: submissions pile up in the bounded queue
        admitted = [service.submit(req), service.submit(req)]
        with pytest.raises(AdmissionRejected) as exc_info:
            service.submit(req)
        exc = exc_info.value
        assert exc.code == "queue_full"
        assert (exc.depth, exc.capacity) == (2, 2)
        # the rejection is accounted, separately from admissions
        assert service.metrics.rejected == {"queue_full": 1}
        assert service.metrics.submitted == 2

        # the saturated service is not wedged: workers drain it completely
        service.start_workers()
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)
        assert snapshot["jobs"]["completed"] == 2
        assert snapshot["queue"]["depth"] == 0
        assert {r.state for r in (service.records[a.job_id] for a in admitted)} == {
            JobState.COMPLETED
        }

    asyncio.run(run())


def test_draining_service_rejects_new_submissions():
    async def run():
        service = _service(workers=1)
        service.start_workers()
        await asyncio.wait_for(service.drain(), timeout=TIMEOUT)
        with pytest.raises(AdmissionRejected) as exc_info:
            service.submit(JobRequest(benchmark="matmul", timesteps=3))
        assert exc_info.value.code == "draining"
        # drain is idempotent: a second call returns another snapshot
        again = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)
        assert again["service"]["draining"] is True

    asyncio.run(run())


# ----------------------------------------------------------------------
# submission validation
# ----------------------------------------------------------------------
def test_submit_validates_against_the_machine():
    service = _service()
    with pytest.raises(ProtocolError, match="unknown benchmark"):
        service.submit(JobRequest(benchmark="nosuch"))
    with pytest.raises(ProtocolError, match="NUMA node"):
        service.submit(JobRequest(benchmark="matmul", nodes=5))
    with pytest.raises(ProtocolError, match="unknown scheduler"):
        service.submit(JobRequest(benchmark="matmul", scheduler="nosuch"))
    # non-leasable schedulers must take the whole machine...
    with pytest.raises(ProtocolError, match="cannot be confined"):
        service.submit(JobRequest(benchmark="matmul", scheduler="baseline", nodes=1))
    assert service.metrics.submitted == 0  # nothing was admitted


def test_non_leasable_scheduler_runs_exclusively():
    async def run():
        service = _service(workers=2)
        service.start_workers()
        record = service.submit(
            JobRequest(benchmark="matmul", scheduler="baseline", nodes=4,
                       timesteps=3)
        )
        while not record.state.terminal:
            await asyncio.sleep(0.01)
        assert record.state is JobState.COMPLETED
        assert record.lease_nodes == [0, 1, 2, 3]
        await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

    asyncio.run(run())


# ----------------------------------------------------------------------
# failure isolation, PTT seeding, caching
# ----------------------------------------------------------------------
def test_failed_job_does_not_kill_its_worker():
    async def run():
        service = _service(workers=1)
        real_run_specs = service.runner.run_specs
        calls = {"n": 0}

        def flaky(specs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected simulation failure")
            return real_run_specs(specs)

        service.runner.run_specs = flaky
        service.start_workers()
        bad = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        good = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        assert bad.state is JobState.FAILED
        assert "injected simulation failure" in bad.error
        assert good.state is JobState.COMPLETED
        assert snapshot["jobs"]["failed"] == 1
        assert snapshot["jobs"]["completed"] == 1
        # the failed job's lease was released
        assert all(v is None for v in snapshot["nodes"]["leases"].values())

    asyncio.run(run())


def test_completed_job_seeds_the_tenants_next_lease():
    async def run():
        service = _service(workers=1)
        service.start_workers()
        first = service.submit(
            JobRequest(benchmark="matmul", timesteps=3, nodes=2, tenant="alice")
        )
        while not first.state.terminal:
            await asyncio.sleep(0.01)
        hint = service.tenant_state.hint("alice", "matmul")
        assert hint in first.lease_nodes  # learned from the job's own PTT
        second = service.submit(
            JobRequest(benchmark="matmul", timesteps=3, nodes=2, tenant="alice")
        )
        while not second.state.terminal:
            await asyncio.sleep(0.01)
        # the whole machine was free, so the preferred seed was honoured
        assert hint in second.lease_nodes
        await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

    asyncio.run(run())


def test_repeated_job_is_served_from_the_run_cache(tmp_path):
    async def run():
        service = _service(
            workers=1, config=_fast_config(cache_dir=str(tmp_path / "cache"))
        )
        service.start_workers()
        req = JobRequest(benchmark="matmul", timesteps=3, nodes=2, tenant="alice")
        for _ in range(2):
            record = service.submit(req)
            while not record.state.terminal:
                await asyncio.sleep(0.01)
            assert record.state is JobState.COMPLETED
        stats = service.runner.cache.stats
        assert stats.stores >= 1
        assert stats.hits >= 1  # the second submission resimulated nothing
        await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

    asyncio.run(run())


# ----------------------------------------------------------------------
# wire-level edges
# ----------------------------------------------------------------------
def test_wire_ping_status_and_errors():
    async def run():
        service = _service(workers=1)
        host, port = await service.start("127.0.0.1", 0)
        async with await ServiceClient.connect(host, port) as cli:
            pong = await cli.ping()
            assert pong["ok"] is True

            with pytest.raises(ProtocolError, match="unknown job"):
                await cli.status("job-99999")

            with pytest.raises(ProtocolError):
                await cli.request({"op": "nosuch"})

            with pytest.raises(ProtocolError):  # malformed submit payload
                await cli.request({"op": "submit", "job": {"benchmark": "ft",
                                                           "bogus": 1}})

            job_id = await cli.submit(JobRequest(benchmark="matmul", timesteps=3))
            job = await cli.wait(job_id, timeout=TIMEOUT)
            assert job["state"] == "completed"
            assert job["result"]["runs"] == 1

            metrics = await cli.metrics()
            assert metrics["jobs"]["submitted"] == 1
        async with await ServiceClient.connect(host, port) as cli:
            await asyncio.wait_for(cli.drain(), timeout=TIMEOUT)

    asyncio.run(run())


def test_drain_during_faults_accounts_for_every_admitted_job():
    """Drain issued while a crash plan is biting mid-flight: every admitted
    job must still reach a terminal state, with nothing lost to the crash
    window between lease reclamation and requeue."""
    from repro.serve.faults import FaultKind, FaultPlan

    async def run():
        plan = FaultPlan({FaultKind.WORKER_CRASH: 1.0}, seed=0, fault_attempts=1)
        service = _service(workers=2, fault_plan=plan, max_attempts=3)
        service.start_workers()
        records = [
            service.submit(JobRequest(benchmark="matmul", timesteps=3, nodes=1))
            for _ in range(4)
        ]
        # drain immediately: the crashes (and their requeues) happen while
        # the service is already refusing new work
        snapshot = await asyncio.wait_for(service.drain(), timeout=60)

        assert all(r.state is JobState.COMPLETED for r in records)
        jobs = snapshot["jobs"]
        assert jobs["submitted"] == 4
        assert jobs["completed"] == 4
        assert jobs["active"] == 0 and jobs["queued"] == 0
        assert jobs["submitted"] == (
            jobs["completed"] + jobs["failed"] + jobs["active"] + jobs["queued"]
        )
        assert snapshot["recovery"]["requeued"] == 4
        assert snapshot["recovery"]["leases_reclaimed"] == 4
        assert all(o is None for o in snapshot["nodes"]["leases"].values())
        # drained for real: new submissions still get the typed rejection
        with pytest.raises(AdmissionRejected, match="drain"):
            service.submit(JobRequest(benchmark="matmul"))

    asyncio.run(run())
