"""Lease-arbitration tests: unit behaviour plus the property-tested
invariants — concurrent leases pairwise disjoint and inside the machine's
node set, and strict-FIFO granting so no queued job starves."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.arbiter import LeaseLedger, NodeArbiter
from repro.serve.protocol import LeaseError
from repro.topology.presets import default_distances, dual_socket_small, tiny_two_node


def _ledger():
    topo = dual_socket_small()
    return LeaseLedger(topo, default_distances(topo))


# ----------------------------------------------------------------------
# LeaseLedger units
# ----------------------------------------------------------------------
def test_grant_and_release_round_trip():
    ledger = _ledger()
    mask = ledger.grant("a", 2)
    assert mask is not None and mask.count() == 2
    assert set(ledger.free_nodes) == set(range(4)) - set(mask.indices())
    released = ledger.release("a")
    assert released.bits == mask.bits
    assert ledger.free_nodes == [0, 1, 2, 3]


def test_grant_returns_none_when_insufficient():
    ledger = _ledger()
    assert ledger.grant("a", 3) is not None
    assert ledger.grant("b", 2) is None  # only one node free
    assert ledger.grant("b", 1) is not None


def test_double_grant_and_unknown_release_raise():
    ledger = _ledger()
    ledger.grant("a", 1)
    with pytest.raises(LeaseError, match="already holds"):
        ledger.grant("a", 1)
    with pytest.raises(LeaseError, match="holds no lease"):
        ledger.release("ghost")


@pytest.mark.parametrize("bad", [0, -1, 5, 1.5, "two"])
def test_impossible_requests_raise(bad):
    with pytest.raises(LeaseError):
        _ledger().grant("a", bad)


def test_preferred_node_out_of_range_raises():
    with pytest.raises(LeaseError, match="outside"):
        _ledger().grant("a", 1, preferred=4)


def test_preferred_node_seeds_growth():
    ledger = _ledger()
    mask = ledger.grant("a", 1, preferred=3)
    assert mask.indices() == [3]


def test_growth_prefers_same_socket():
    # seed on socket 1 (nodes 2, 3): a two-node lease stays on that socket
    ledger = _ledger()
    mask = ledger.grant("a", 2, preferred=2)
    assert mask.indices() == [2, 3]


def test_taken_preferred_falls_back_to_nearest_free():
    ledger = _ledger()
    ledger.grant("a", 1, preferred=2)
    # node 2 is taken; nearest free to it is its socket mate, node 3
    mask = ledger.grant("b", 1, preferred=2)
    assert mask.indices() == [3]


def test_lease_map_names_owners():
    ledger = _ledger()
    ledger.grant("a", 2, preferred=0)
    assert ledger.lease_map() == {0: "a", 1: "a", 2: None, 3: None}


def test_distance_matrix_size_mismatch_raises():
    with pytest.raises(LeaseError, match="distance matrix"):
        LeaseLedger(dual_socket_small(), default_distances(tiny_two_node()))


# ----------------------------------------------------------------------
# properties: disjointness + node-set containment under any history
# ----------------------------------------------------------------------
def _check_invariants(ledger, all_nodes):
    leased = []
    for lease in ledger.leases().values():
        leased.extend(lease.nodes)
    assert len(leased) == len(set(leased)), "leases overlap"
    assert set(leased) <= all_nodes, "lease outside the machine's node set"
    assert set(ledger.free_nodes) | set(leased) == all_nodes
    assert set(ledger.free_nodes) & set(leased) == set()


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_ledger_invariants_under_random_grant_release(data):
    topo = dual_socket_small()
    ledger = LeaseLedger(topo, default_distances(topo))
    all_nodes = set(topo.node_ids())
    active: list[str] = []
    next_id = 0
    for _ in range(data.draw(st.integers(0, 25), label="steps")):
        grant = not active or data.draw(st.booleans(), label="grant?")
        if grant:
            size = data.draw(st.integers(1, topo.num_nodes), label="size")
            preferred = data.draw(
                st.one_of(st.none(), st.integers(0, topo.num_nodes - 1)),
                label="preferred",
            )
            free_before = len(ledger.free_nodes)
            job = f"job-{next_id}"
            next_id += 1
            mask = ledger.grant(job, size, preferred)
            if size <= free_before:
                assert mask is not None and mask.count() == size
                active.append(job)
            else:
                assert mask is None  # refused, not partially granted
        else:
            idx = data.draw(st.integers(0, len(active) - 1), label="victim")
            ledger.release(active.pop(idx))
        _check_invariants(ledger, all_nodes)


# ----------------------------------------------------------------------
# NodeArbiter: strict FIFO ⇒ no starvation
# ----------------------------------------------------------------------
async def _drive_fifo(sizes):
    topo = dual_socket_small()
    arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
    grant_order: list[int] = []

    async def job(i, size):
        await arbiter.acquire(f"job-{i}", size)
        grant_order.append(i)
        await asyncio.sleep(0)  # hold the lease across at least one tick
        await arbiter.release(f"job-{i}")

    tasks = []
    for i, size in enumerate(sizes):
        tasks.append(asyncio.create_task(job(i, size)))
        # wait until job i is in the line (or already granted) so the
        # submission order is exactly 0, 1, 2, ...
        while f"job-{i}" not in arbiter.waiting and i not in grant_order:
            await asyncio.sleep(0)
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=10)
    return grant_order, arbiter


@given(sizes=st.lists(st.integers(1, 4), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_arbiter_is_strict_fifo_so_no_job_starves(sizes):
    grant_order, arbiter = asyncio.run(_drive_fifo(sizes))
    # every job was granted, in exact submission order: a big job at the
    # head is never overtaken (starved) by later small ones
    assert grant_order == list(range(len(sizes)))
    assert arbiter.waiting == []
    assert arbiter.ledger.free_nodes == [0, 1, 2, 3]


def test_small_job_waits_behind_blocked_large_one():
    """Head-of-line blocking: the no-starvation trade-off made concrete."""

    async def run():
        topo = dual_socket_small()
        arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
        await arbiter.acquire("holder", 3)  # one node left free
        events: list[str] = []

        async def large():
            await arbiter.acquire("large", 4)
            events.append("large")
            await arbiter.release("large")

        async def small():
            await arbiter.acquire("small", 1)
            events.append("small")
            await arbiter.release("small")

        t_large = asyncio.create_task(large())
        while "large" not in arbiter.waiting:
            await asyncio.sleep(0)
        t_small = asyncio.create_task(small())
        while "small" not in arbiter.waiting:
            await asyncio.sleep(0)
        # one node is free and would fit "small", but "large" heads the line
        await asyncio.sleep(0.02)
        assert events == []
        await arbiter.release("holder")
        await asyncio.wait_for(asyncio.gather(t_large, t_small), timeout=10)
        return events

    assert asyncio.run(run()) == ["large", "small"]


def test_hopeless_request_raises_without_joining_line():
    async def run():
        topo = tiny_two_node()
        arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
        with pytest.raises(LeaseError):
            await arbiter.acquire("greedy", 3)  # machine has 2 nodes
        assert arbiter.waiting == []
        # the line is not poisoned: a sane request still succeeds
        mask = await arbiter.acquire("ok", 2)
        assert mask.count() == 2

    asyncio.run(run())


def test_cancelled_waiter_leaves_the_line():
    async def run():
        topo = tiny_two_node()
        arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
        await arbiter.acquire("holder", 2)
        waiter = asyncio.create_task(arbiter.acquire("doomed", 1))
        while "doomed" not in arbiter.waiting:
            await asyncio.sleep(0)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        assert arbiter.waiting == []
        await arbiter.release("holder")
        # arbitration still works after the cancellation
        mask = await asyncio.wait_for(arbiter.acquire("next", 1), timeout=10)
        assert mask.count() == 1

    asyncio.run(run())


def test_reclaim_releases_a_dead_owners_lease_and_wakes_waiters():
    async def run():
        topo = tiny_two_node()
        arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
        held = await arbiter.acquire("crashed-job", 2)
        waiter = asyncio.create_task(arbiter.acquire("blocked-job", 1))
        while "blocked-job" not in arbiter.waiting:
            await asyncio.sleep(0)
        reclaimed = await arbiter.reclaim("crashed-job")
        assert reclaimed is not None and reclaimed.bits == held.bits
        # the reclaim frees the nodes and wakes the FIFO line
        mask = await asyncio.wait_for(waiter, timeout=10)
        assert mask.count() == 1

    asyncio.run(run())


def test_reclaim_of_unknown_owner_is_a_noop():
    async def run():
        topo = tiny_two_node()
        arbiter = NodeArbiter(LeaseLedger(topo, default_distances(topo)))
        assert await arbiter.reclaim("never-leased") is None
        # double reclaim: second call finds nothing
        await arbiter.acquire("job", 1)
        assert await arbiter.reclaim("job") is not None
        assert await arbiter.reclaim("job") is None

    asyncio.run(run())
