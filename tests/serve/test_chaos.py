"""Chaos suite: seeded fault plans replayed against the service.

The contract under test: whatever a (deterministic, seeded) fault plan
throws at the service — worker crashes, transient runner errors, deadline
hangs, budget exhaustion — the service always converges to drained with
every admitted job in a terminal state, conservation holding
(``submitted == completed + failed + active + queued``), zero leaked
leases, and every fault visible in the metrics counters.  And because the
plans are seeded, two identical runs must produce *identical* end states.
"""

import asyncio
import json
import random

import pytest

from repro.errors import ServeError, TransientRunnerError
from repro.exp.runner import ExperimentConfig
from repro.serve.client import ServiceClient
from repro.serve.faults import FaultKind, FaultPlan, WorkerCrashed, parse_fault_spec
from repro.serve.protocol import AdmissionRejected, JobRequest, JobState
from repro.serve.server import SchedulingService
from repro.topology.presets import dual_socket_small

TIMEOUT = 60  # generous hang guard; the whole module runs in seconds


def _fast_config(**overrides):
    base = dict(seeds=1, timesteps=3, with_noise=False, jobs=1, cache_dir=None)
    base.update(overrides)
    return ExperimentConfig(**base)


def _service(**kwargs):
    kwargs.setdefault("config", _fast_config())
    return SchedulingService(dual_socket_small(), **kwargs)


def _conserves(snapshot) -> bool:
    jobs = snapshot["jobs"]
    return jobs["submitted"] == (
        jobs["completed"] + jobs["failed"] + jobs["active"] + jobs["queued"]
    )


def _all_leases_free(snapshot) -> bool:
    return all(owner is None for owner in snapshot["nodes"]["leases"].values())


# ----------------------------------------------------------------------
# FaultPlan: spec parsing and seeded determinism
# ----------------------------------------------------------------------
def test_parse_fault_spec_round_trip():
    probs = parse_fault_spec("crash=0.2, transient=0.3,deadline=0.1,disconnect=0.05")
    assert probs == {
        FaultKind.WORKER_CRASH: 0.2,
        FaultKind.TRANSIENT_ERROR: 0.3,
        FaultKind.DEADLINE_HANG: 0.1,
        FaultKind.CLIENT_DISCONNECT: 0.05,
    }
    plan = FaultPlan(probs, seed=3)
    assert FaultPlan.from_spec(plan.to_spec(), seed=3).probabilities == probs


@pytest.mark.parametrize(
    "bad",
    [
        "explode=0.5",          # unknown kind
        "crash",                # missing probability
        "crash=lots",           # unparsable probability
        "crash=0.2,crash=0.3",  # duplicate
        "",                     # empty
    ],
)
def test_parse_fault_spec_rejects(bad):
    with pytest.raises(ServeError):
        parse_fault_spec(bad)


def test_fault_plan_rejects_bad_probabilities():
    with pytest.raises(ServeError, match="in \\[0, 1\\]"):
        FaultPlan({FaultKind.WORKER_CRASH: 1.5})
    with pytest.raises(ServeError, match="sum"):
        FaultPlan({FaultKind.WORKER_CRASH: 0.7, FaultKind.TRANSIENT_ERROR: 0.6})
    with pytest.raises(ServeError, match="fault_attempts"):
        FaultPlan({FaultKind.WORKER_CRASH: 0.5}, fault_attempts=0)


def test_fault_plan_decisions_are_seed_deterministic():
    jobs = [f"job-{i:05d}" for i in range(1, 50)]
    probs = {FaultKind.WORKER_CRASH: 0.3, FaultKind.TRANSIENT_ERROR: 0.3}
    a = FaultPlan(probs, seed=11)
    b = FaultPlan(probs, seed=11)
    c = FaultPlan(probs, seed=12)
    decisions_a = [a.decide(j) for j in jobs]
    assert decisions_a == [b.decide(j) for j in jobs]
    assert decisions_a != [c.decide(j) for j in jobs]
    # with these probabilities a 49-job sample hits both kinds and neither
    assert set(decisions_a) == {
        FaultKind.WORKER_CRASH, FaultKind.TRANSIENT_ERROR, None
    }


def test_fault_plan_certain_and_impossible_kinds():
    always = FaultPlan({FaultKind.DEADLINE_HANG: 1.0}, seed=0)
    never = FaultPlan({FaultKind.DEADLINE_HANG: 0.0}, seed=0)
    for job in ("job-00001", "job-00002", "job-00003"):
        assert always.decide(job) is FaultKind.DEADLINE_HANG
        assert never.decide(job) is None


def test_should_inject_respects_fault_attempts():
    plan = FaultPlan({FaultKind.WORKER_CRASH: 1.0}, seed=0, fault_attempts=2)
    assert plan.should_inject("job-00001", FaultKind.WORKER_CRASH, 0)
    assert plan.should_inject("job-00001", FaultKind.WORKER_CRASH, 1)
    assert not plan.should_inject("job-00001", FaultKind.WORKER_CRASH, 2)
    assert not plan.should_inject("job-00001", FaultKind.TRANSIENT_ERROR, 0)


# ----------------------------------------------------------------------
# crash recovery: lease reclamation + requeue + worker respawn
# ----------------------------------------------------------------------
def test_crashed_worker_is_respawned_and_job_recovers():
    async def run():
        plan = FaultPlan({FaultKind.WORKER_CRASH: 1.0}, seed=0, fault_attempts=1)
        service = _service(workers=2, fault_plan=plan, max_attempts=3)
        service.start_workers()
        records = [
            service.submit(JobRequest(benchmark="matmul", timesteps=3, nodes=2))
            for _ in range(3)
        ]
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        # every job crashed once, was requeued, and completed on retry
        assert all(r.state is JobState.COMPLETED for r in records)
        assert all(r.attempts == 1 for r in records)
        assert all("WorkerCrashed" in r.attempt_history[0]["error"] for r in records)
        assert snapshot["jobs"]["completed"] == 3
        assert snapshot["recovery"]["requeued"] == 3
        assert snapshot["recovery"]["leases_reclaimed"] == 3
        assert snapshot["recovery"]["faults_injected"] == {"crash": 3}
        assert service.workers_crashed == 3
        assert _conserves(snapshot)
        assert _all_leases_free(snapshot)

    asyncio.run(run())


def test_crash_budget_exhaustion_yields_typed_job_failed():
    async def run():
        # the fault outlives the budget: 5 faulted attempts vs 2 allowed
        plan = FaultPlan({FaultKind.WORKER_CRASH: 1.0}, seed=0, fault_attempts=5)
        service = _service(workers=1, fault_plan=plan, max_attempts=2)
        service.start_workers()
        record = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        assert record.state is JobState.FAILED
        assert record.attempts == 2
        assert len(record.attempt_history) == 2
        assert "failed after 2 attempt(s)" in record.error
        assert "WorkerCrashed" in record.error
        assert snapshot["jobs"]["failed"] == 1
        assert snapshot["recovery"]["requeued"] == 1  # only the first crash requeues
        assert snapshot["recovery"]["leases_reclaimed"] == 2
        assert _conserves(snapshot)
        assert _all_leases_free(snapshot)

    asyncio.run(run())


# ----------------------------------------------------------------------
# transient runner errors: retry within budget
# ----------------------------------------------------------------------
def test_transient_error_retries_and_completes():
    async def run():
        plan = FaultPlan({FaultKind.TRANSIENT_ERROR: 1.0}, seed=0, fault_attempts=2)
        service = _service(workers=1, fault_plan=plan, max_attempts=3)
        service.start_workers()
        record = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        assert record.state is JobState.COMPLETED
        assert record.attempts == 2
        assert all(
            "TransientRunnerError" in a["error"] for a in record.attempt_history
        )
        assert snapshot["recovery"]["retried"] == 2
        assert snapshot["recovery"]["faults_injected"] == {"transient": 2}
        # transient retries release cleanly: nothing to reclaim
        assert snapshot["recovery"]["leases_reclaimed"] == 0
        assert _conserves(snapshot)
        assert _all_leases_free(snapshot)

    asyncio.run(run())


def test_transient_budget_exhaustion_records_history():
    async def run():
        plan = FaultPlan({FaultKind.TRANSIENT_ERROR: 1.0}, seed=0, fault_attempts=9)
        service = _service(workers=1, fault_plan=plan, max_attempts=3)
        service.start_workers()
        record = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        assert record.state is JobState.FAILED
        assert record.attempts == 3
        assert "failed after 3 attempt(s)" in record.error
        assert snapshot["recovery"]["retried"] == 2  # third failure is terminal
        assert _conserves(snapshot)
        assert _all_leases_free(snapshot)

    asyncio.run(run())


# ----------------------------------------------------------------------
# deadlines: watchdog cancellation
# ----------------------------------------------------------------------
def test_deadline_hang_is_cancelled_by_the_watchdog():
    async def run():
        plan = FaultPlan({FaultKind.DEADLINE_HANG: 1.0}, seed=0)
        service = _service(workers=2, fault_plan=plan, max_attempts=3)
        service.start_workers()
        record = service.submit(
            JobRequest(benchmark="matmul", timesteps=3, deadline_s=0.1)
        )
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)

        assert record.state is JobState.FAILED
        assert "DeadlineExceeded" in record.error
        assert snapshot["recovery"]["deadline_exceeded"] == 1
        assert snapshot["recovery"]["faults_injected"] == {"deadline": 1}
        # deadline overruns are terminal: no retry
        assert snapshot["recovery"]["retried"] == 0
        assert snapshot["recovery"]["requeued"] == 0
        assert _conserves(snapshot)
        assert _all_leases_free(snapshot)

    asyncio.run(run())


def test_service_default_deadline_applies_to_jobs_without_one():
    async def run():
        plan = FaultPlan({FaultKind.DEADLINE_HANG: 1.0}, seed=0)
        service = _service(
            workers=1, fault_plan=plan, default_deadline_s=0.1
        )
        service.start_workers()
        record = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)
        assert record.state is JobState.FAILED
        assert "DeadlineExceeded" in record.error
        assert snapshot["recovery"]["deadline_exceeded"] == 1

    asyncio.run(run())


def test_deadline_fault_without_any_deadline_is_a_noop():
    async def run():
        plan = FaultPlan({FaultKind.DEADLINE_HANG: 1.0}, seed=0)
        service = _service(workers=1, fault_plan=plan)
        service.start_workers()
        record = service.submit(JobRequest(benchmark="matmul", timesteps=3))
        snapshot = await asyncio.wait_for(service.drain(), timeout=TIMEOUT)
        assert record.state is JobState.COMPLETED
        assert snapshot["recovery"]["deadline_exceeded"] == 0
        assert snapshot["recovery"]["faults_injected"] == {}

    asyncio.run(run())


# ----------------------------------------------------------------------
# mixed seeded plan over the wire, twice: identical end states
# ----------------------------------------------------------------------
async def _chaos_scenario() -> dict:
    """One full chaos run over TCP; returns a canonical (time-free) report."""
    plan = FaultPlan(
        {
            FaultKind.WORKER_CRASH: 0.3,
            FaultKind.TRANSIENT_ERROR: 0.3,
            FaultKind.DEADLINE_HANG: 0.2,
        },
        seed=7,
        fault_attempts=1,
    )
    # workers=1 keeps grant order deterministic, so the replay is exact
    service = _service(workers=1, fault_plan=plan, max_attempts=3)
    host, port = await service.start("127.0.0.1", 0)
    async with await ServiceClient.connect(host, port) as cli:
        job_ids = [
            await cli.submit(
                JobRequest(benchmark="matmul", timesteps=3, nodes=2,
                           tenant=f"tenant-{i % 2}", deadline_s=1.0)
            )
            for i in range(6)
        ]
        jobs = [await cli.wait(job_id, timeout=TIMEOUT) for job_id in job_ids]
    async with await ServiceClient.connect(host, port) as cli:
        snapshot = await asyncio.wait_for(cli.drain(), timeout=TIMEOUT)

    assert _conserves(snapshot)
    assert _all_leases_free(snapshot)
    assert snapshot["nodes"]["waiting_for_lease"] == []
    assert all(job["state"] in ("completed", "failed") for job in jobs)
    # the seeded sample at seed=7 hits crash, transient and deadline faults
    assert snapshot["recovery"]["faults_injected"]

    return {
        "decisions": plan.decisions(),
        "injected": dict(sorted(plan.injected.items())),
        "jobs": {
            job["job_id"]: {
                "state": job["state"],
                "attempts": job["attempts"],
                "errors": [a["error"] for a in job["attempt_history"]],
                "error": job["error"],
                "lease_nodes": job["lease_nodes"],
                "result": job["result"],
            }
            for job in jobs
        },
        "counters": {
            "completed": snapshot["jobs"]["completed"],
            "failed": snapshot["jobs"]["failed"],
            "retried": snapshot["recovery"]["retried"],
            "requeued": snapshot["recovery"]["requeued"],
            "deadline_exceeded": snapshot["recovery"]["deadline_exceeded"],
            "leases_reclaimed": snapshot["recovery"]["leases_reclaimed"],
        },
    }


def test_seeded_chaos_run_is_byte_reproducible():
    first = json.dumps(asyncio.run(_chaos_scenario()), sort_keys=True)
    second = json.dumps(asyncio.run(_chaos_scenario()), sort_keys=True)
    assert first == second
    report = json.loads(first)
    # the plan actually bit: at least one fault kind fired
    assert sum(report["injected"].values()) > 0


# ----------------------------------------------------------------------
# client resilience: backoff polling and jittered retry
# ----------------------------------------------------------------------
class _StubClient(ServiceClient):
    """ServiceClient with the wire swapped out for canned behaviour."""

    def __init__(self):
        # no real streams: the stubbed methods never touch them
        super().__init__(reader=None, writer=None, host="stub", port=0)


def test_wait_backs_off_exponentially_with_cap(monkeypatch):
    client = _StubClient()
    polls = {"n": 0}
    sleeps = []

    async def fake_status(job_id):
        polls["n"] += 1
        state = "completed" if polls["n"] >= 7 else "running"
        return {"job_id": job_id, "state": state}

    async def fake_sleep(delay):
        sleeps.append(delay)

    client.status = fake_status
    monkeypatch.setattr(asyncio, "sleep", fake_sleep)
    job = asyncio.run(client.wait("job-1", poll_interval=0.02, max_poll_interval=0.1))
    assert job["state"] == "completed"
    # doubled each poll, capped at the maximum
    assert sleeps == [0.02, 0.04, 0.08, 0.1, 0.1, 0.1]


def test_wait_without_timeout_never_wraps_in_wait_for(monkeypatch):
    client = _StubClient()

    async def fake_status(job_id):
        return {"job_id": job_id, "state": "completed"}

    def boom(*args, **kwargs):
        raise AssertionError("wait(timeout=None) must not use asyncio.wait_for")

    client.status = fake_status
    monkeypatch.setattr(asyncio, "wait_for", boom)
    job = asyncio.run(client.wait("job-1", timeout=None))
    assert job["state"] == "completed"


def test_submit_with_retry_uses_full_jitter_and_recovers():
    client = _StubClient()
    calls = {"n": 0}
    sleeps = []

    async def flaky_submit(request):
        calls["n"] += 1
        if calls["n"] <= 3:
            raise AdmissionRejected("queue_full", "saturated", depth=4, capacity=4)
        return "job-00042"

    async def record_sleep(delay):
        sleeps.append(delay)

    client.submit = flaky_submit

    job_id = asyncio.run(
        client.submit_with_retry(
            JobRequest(benchmark="matmul"),
            max_retries=5,
            base_delay=0.05,
            max_delay=0.3,
            rng=random.Random(123),
            sleep=record_sleep,
        )
    )
    assert job_id == "job-00042"
    assert calls["n"] == 4
    # full jitter: each delay is uniform in [0, min(cap, base * 2^attempt)]
    assert len(sleeps) == 3
    for attempt, delay in enumerate(sleeps, start=1):
        assert 0.0 <= delay <= min(0.3, 0.05 * 2**attempt)
    # the seeded schedule replays identically
    rng = random.Random(123)
    replay = [rng.uniform(0.0, min(0.3, 0.05 * 2**n)) for n in (1, 2, 3)]
    assert sleeps == replay


def test_submit_with_retry_gives_up_after_budget_and_never_retries_draining():
    client = _StubClient()

    async def always_full(request):
        raise AdmissionRejected("queue_full", "saturated", depth=4, capacity=4)

    async def draining(request):
        raise AdmissionRejected("draining", "bye")

    async def no_sleep(delay):
        pass

    client.submit = always_full
    with pytest.raises(AdmissionRejected, match="saturated"):
        asyncio.run(
            client.submit_with_retry(
                JobRequest(benchmark="matmul"), max_retries=2,
                rng=random.Random(0), sleep=no_sleep,
            )
        )

    calls = {"n": 0}

    async def counting_draining(request):
        calls["n"] += 1
        raise AdmissionRejected("draining", "bye")

    client.submit = counting_draining
    with pytest.raises(AdmissionRejected, match="bye"):
        asyncio.run(
            client.submit_with_retry(
                JobRequest(benchmark="matmul"), max_retries=5,
                rng=random.Random(0), sleep=no_sleep,
            )
        )
    assert calls["n"] == 1  # draining can never succeed: no retry


# ----------------------------------------------------------------------
# faults.py internals used by the server
# ----------------------------------------------------------------------
def test_worker_crashed_is_a_serve_error():
    exc = WorkerCrashed("boom")
    assert isinstance(exc, ServeError)
    assert isinstance(TransientRunnerError("x"), ServeError)
