"""Unit tests for the bounded admission queue's backpressure contract."""

import asyncio

import pytest

from repro.serve.admission import AdmissionQueue
from repro.serve.protocol import AdmissionRejected


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_offer_fills_to_capacity_then_rejects_typed():
    q: AdmissionQueue[int] = AdmissionQueue(3)
    for i in range(3):
        q.offer(i)
    assert q.depth == 3
    with pytest.raises(AdmissionRejected) as exc_info:
        q.offer(99)
    exc = exc_info.value
    assert exc.code == "queue_full"
    assert (exc.depth, exc.capacity) == (3, 3)
    assert q.depth == 3  # rejected item was not admitted


def test_draining_rejects_even_when_empty():
    q: AdmissionQueue[int] = AdmissionQueue(4)
    q.start_drain()
    with pytest.raises(AdmissionRejected) as exc_info:
        q.offer(1)
    assert exc_info.value.code == "draining"


def test_take_is_fifo():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(8)
        for i in range(5):
            q.offer(i)
        return [await q.take() for _ in range(5)]

    assert asyncio.run(run()) == [0, 1, 2, 3, 4]


def test_take_returns_none_when_drained_dry():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        q.offer(7)
        q.start_drain()
        return await q.take(), await q.take()

    assert asyncio.run(run()) == (7, None)


def test_idle_taker_wakes_on_drain():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        taker = asyncio.create_task(q.take())
        await asyncio.sleep(0.01)  # taker is parked waiting
        q.start_drain()
        return await asyncio.wait_for(taker, timeout=2)

    assert asyncio.run(run()) is None


def test_idle_taker_wakes_on_offer():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        taker = asyncio.create_task(q.take())
        await asyncio.sleep(0.01)
        q.offer(42)
        return await asyncio.wait_for(taker, timeout=2)

    assert asyncio.run(run()) == 42


def test_join_waits_for_task_done():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        q.offer(1)
        q.offer(2)
        assert q.unfinished == 2
        await q.take()
        q.task_done()
        joiner = asyncio.create_task(q.join())
        await asyncio.sleep(0.01)
        assert not joiner.done()  # one item still unfinished
        await q.take()
        q.task_done()
        await asyncio.wait_for(joiner, timeout=2)
        assert q.unfinished == 0

    asyncio.run(run())


def test_join_resolves_immediately_when_nothing_admitted():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        await asyncio.wait_for(q.join(), timeout=2)

    asyncio.run(run())


def test_task_done_overflow_raises():
    q: AdmissionQueue[int] = AdmissionQueue(2)
    with pytest.raises(ValueError):
        q.task_done()


def test_saturate_then_consume_reopens_admission():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(1)
        q.offer(1)
        with pytest.raises(AdmissionRejected):
            q.offer(2)
        await q.take()
        q.task_done()
        q.offer(3)  # capacity is depth-based: freed by the take
        return await q.take()

    assert asyncio.run(run()) == 3


def test_requeue_bypasses_capacity_and_draining():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(1)
        q.offer(1)
        # recovery re-admission is exempt from the capacity bound ...
        q.requeue(2)
        assert q.depth == 2
        q.start_drain()
        # ... and from the draining gate (the job was already admitted)
        q.requeue(3)
        got = [await q.take(), await q.take(), await q.take()]
        for _ in got:
            q.task_done()
        await asyncio.wait_for(q.join(), timeout=2)
        return got

    assert asyncio.run(run()) == [1, 2, 3]


def test_requeue_keeps_join_blocked_until_retry_finishes():
    async def run():
        q: AdmissionQueue[int] = AdmissionQueue(2)
        q.offer(1)
        item = await q.take()
        # crash recovery: requeue BEFORE task_done so unfinished never
        # momentarily hits zero (else join() would resolve with the job lost)
        q.requeue(item)
        q.task_done()
        joiner = asyncio.create_task(q.join())
        await asyncio.sleep(0)
        assert not joiner.done()  # the retry is still outstanding
        await q.take()
        q.task_done()
        await asyncio.wait_for(joiner, timeout=2)

    asyncio.run(run())
