"""Unit tests for the self-healing federation layer.

Covers each piece in isolation — the logical-clock failure detector, the
supervised respawn budget, the tenant-state generation guard, the PTT
wire round-trip, the moldability export/restore pair, scheduled crash
points and the client reconnect budget — and two compact end-to-end
router scenarios (warm migration, pre-checkpoint drop).
"""

import asyncio

import numpy as np
import pytest

from repro.core.moldability import MoldabilityController, Phase
from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError
from repro.exp.runner import ExperimentConfig
from repro.serve.client import ReconnectExhausted, ServiceClient
from repro.serve.federation import (
    FederationRouter,
    Membership,
    MemberState,
    ShardFaultPlan,
    ShardSupervisor,
    build_shard,
    build_shards,
    respawn_factory,
)
from repro.serve.protocol import JobRequest, ProtocolError
from repro.serve.server import SchedulingService
from repro.serve.tenantstate import TenantCheckpoint, TenantStateStore
from repro.errors import ServeError
from repro.topology.presets import default_distances, dual_socket_small


# ----------------------------------------------------------------------
# failure detector
# ----------------------------------------------------------------------

def test_membership_config_validation():
    with pytest.raises(ValueError):
        Membership(heartbeat_every=0)
    with pytest.raises(ValueError):
        Membership(suspect_after=0)
    # confirmation must pass through SUSPECT first
    with pytest.raises(ValueError):
        Membership(suspect_after=2, confirm_after=2)


def test_membership_suspect_then_confirm():
    m = Membership(heartbeat_every=1, suspect_after=1, confirm_after=2)
    m.register("shard-0")
    m.register("shard-1")

    confirmed = m.poll(["shard-0"], at=3)
    assert confirmed == []
    assert m.state_of("shard-1") is MemberState.SUSPECT
    assert m.suspects() == ["shard-1"]
    assert m.placeable() == ["shard-0"]  # suspects take no new placements

    confirmed = m.poll(["shard-0"], at=4)
    assert [r.member_id for r in confirmed] == ["shard-1"]
    assert m.state_of("shard-1") is MemberState.DEAD
    assert m.deaths_confirmed == 1
    record = m.get("shard-1")
    assert record.ended_at == 4

    transitions = [(e.old_state, e.new_state) for e in m.events
                   if e.member_id == "shard-1"]
    assert transitions == [("none", "alive"), ("alive", "suspect"),
                           ("suspect", "dead")]


def test_membership_suspect_clears_on_answered_poll():
    m = Membership(heartbeat_every=1, suspect_after=1, confirm_after=3)
    m.register("shard-0")
    m.register("shard-1")
    m.poll(["shard-0"], at=1)
    assert m.state_of("shard-1") is MemberState.SUSPECT
    m.poll(["shard-0", "shard-1"], at=2)  # the blip passed
    assert m.state_of("shard-1") is MemberState.ALIVE
    assert m.get("shard-1").missed_polls == 0
    assert m.suspects_cleared == 1
    # the counter restarts from zero: one more miss is only SUSPECT again
    m.poll(["shard-0"], at=3)
    assert m.state_of("shard-1") is MemberState.SUSPECT
    assert m.deaths_confirmed == 0


def test_membership_epoch_guard_on_rejoin():
    m = Membership(heartbeat_every=1, suspect_after=1, confirm_after=2)
    m.register("shard-0")
    with pytest.raises(ValueError):
        m.register("shard-0")  # still alive
    m.poll([], at=1)
    m.poll([], at=2)
    assert m.state_of("shard-0") is MemberState.DEAD
    with pytest.raises(ValueError):
        m.register("shard-0", epoch=0)  # stale incarnation
    record = m.register("shard-0", epoch=1, at=5)
    assert record.instance_id == "shard-0@e1"
    assert m.state_of("shard-0") is MemberState.ALIVE
    assert len(m.describe()["retired"]) == 1


def test_membership_leave_is_clean():
    m = Membership(heartbeat_every=1, suspect_after=1, confirm_after=2)
    m.register("shard-0")
    m.register("shard-1")
    m.leave("shard-1", at=7)
    assert m.state_of("shard-1") is MemberState.LEFT
    assert m.get("shard-1").ended_at == 7
    assert m.leaves == 1
    with pytest.raises(ValueError):
        m.leave("shard-1")  # cannot leave twice
    # departed members are skipped by later polls, never confirmed dead
    assert m.poll(["shard-0"], at=8) == []
    assert m.poll(["shard-0"], at=9) == []
    assert m.deaths_confirmed == 0


def test_membership_due_is_modular():
    m = Membership(heartbeat_every=3, suspect_after=1, confirm_after=2)
    assert not m.due(0)  # never before the first placement
    assert [p for p in range(1, 10) if m.due(p)] == [3, 6, 9]


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------

def _fast_config(**overrides):
    base = dict(seeds=1, timesteps=2, with_noise=False, jobs=1, cache_dir=None)
    base.update(overrides)
    return ExperimentConfig(**base)


def test_supervisor_respawn_budget_and_epochs():
    factory = respawn_factory(dual_socket_small, config=_fast_config(),
                              queue_capacity=8, workers=1)
    sup = ShardSupervisor(factory, max_respawns=1)

    async def run():
        first = await sup.respawn("shard-0", dead_epoch=0, at=4)
        assert first is not None
        assert first.epoch == 1 and first.instance_id == "shard-0@e1"
        await first.kill()
        # budget of one: the second death of the same shard stays dead
        assert not sup.can_respawn("shard-0")
        assert await sup.respawn("shard-0", dead_epoch=1, at=9) is None
        # but another shard id has its own budget
        other = await sup.respawn("shard-1", dead_epoch=0, at=9)
        assert other is not None
        await other.kill()

    asyncio.run(run())
    doc = sup.describe()
    assert doc["respawns_total"] == 2
    assert doc["per_shard"] == {"shard-0": 1, "shard-1": 1}
    assert [(r["shard_id"], r["new_epoch"]) for r in doc["log"]] == [
        ("shard-0", 1), ("shard-1", 1)]


def test_supervisor_rejects_factory_epoch_mismatch():
    def bad_factory(shard_id, epoch):
        return build_shard(shard_id, dual_socket_small, epoch=epoch + 1,
                           config=_fast_config(), queue_capacity=8, workers=1)

    sup = ShardSupervisor(bad_factory, max_respawns=1)
    with pytest.raises(ValueError):
        asyncio.run(sup.respawn("shard-0", dead_epoch=0, at=1))


# ----------------------------------------------------------------------
# warm-state wire formats and guards
# ----------------------------------------------------------------------

def _warm_ptt(num_nodes=4):
    ptt = TaskloopPTT(num_nodes=num_nodes)
    perf = np.full(num_nodes, np.nan)
    perf[0] = 2.0
    ptt.record((4, 0b0001, "strict"), 1.5, perf)
    ptt.record((4, 0b0001, "strict"), 1.7)
    ptt.record((8, 0b0011, "full"), 1.1)
    return ptt


def test_ptt_wire_round_trip_is_exact():
    ptt = _warm_ptt()
    clone = TaskloopPTT.from_wire(ptt.to_wire())
    assert clone.num_nodes == ptt.num_nodes
    assert clone.executions == ptt.executions
    assert set(clone.entries) == set(ptt.entries)
    for key, stats in ptt.entries.items():
        other = clone.entries[key]
        # Welford triples travel exactly: merged statistics stay exact
        assert (other.count, other.mean, other.m2, other.min_time) == (
            stats.count, stats.mean, stats.m2, stats.min_time)
    assert np.array_equal(clone.node_perf, ptt.node_perf, equal_nan=True)
    # the round trip is a fixed point at the byte level
    assert clone.to_wire() == ptt.to_wire()


def test_ptt_import_wire_generation_guard():
    ptt = _warm_ptt()
    stale = ptt.to_wire()  # generation 0
    ptt.invalidate()  # generation 1: the old entries are declared dead
    assert not ptt.import_wire(stale)
    assert ptt.entries == {}  # the resurrection was refused
    fresh = _warm_ptt()
    fresh.invalidate()
    fresh.record((2, 0b0001, "strict"), 0.9)
    assert ptt.import_wire(fresh.to_wire())
    assert (2, 0b0001, "strict") in ptt.entries


def test_ptt_from_wire_rejects_malformed():
    with pytest.raises(ConfigurationError):
        TaskloopPTT.from_wire({"version": 999})
    doc = _warm_ptt().to_wire()
    doc["node_perf"] = [1.0]  # wrong width
    with pytest.raises(ConfigurationError):
        TaskloopPTT.from_wire(doc)


def _checkpoint(generation, *, tenant="tenant-0", benchmark="matmul"):
    return TenantCheckpoint(
        tenant=tenant, benchmark=benchmark, generation=generation,
        jobs_completed=generation, fastest_node=1, phase="settled",
        ptt=_warm_ptt(),
    )


def test_tenant_state_store_generation_guard():
    store = TenantStateStore()
    assert store.import_doc(_checkpoint(3).to_wire())
    assert store.hint("tenant-0", "matmul") == 1
    # at or below the held generation: refused, tallied, state untouched
    assert not store.import_doc(_checkpoint(3).to_wire())
    assert not store.import_doc(_checkpoint(1).to_wire())
    assert store.stale_imports == 2
    assert store.get("tenant-0", "matmul").generation == 3
    # strictly newer wins
    assert store.import_doc(_checkpoint(4).to_wire())
    assert store.get("tenant-0", "matmul").generation == 4
    assert store.imported == 2
    with pytest.raises(ServeError):
        store.import_doc({"version": 999})


def test_tenant_state_drain_dirty_is_a_delta():
    store = TenantStateStore()
    store.import_doc(_checkpoint(1).to_wire())
    store.import_doc(_checkpoint(1, tenant="tenant-1").to_wire())
    docs = store.drain_dirty()
    assert sorted(d["tenant"] for d in docs) == ["tenant-0", "tenant-1"]
    assert store.drain_dirty() == []  # nothing changed since
    store.import_doc(_checkpoint(2).to_wire())
    assert [d["tenant"] for d in store.drain_dirty()] == ["tenant-0"]


def test_moldability_export_restore_round_trip(small):
    ctrl = MoldabilityController(
        topology=small, distances=default_distances(small), granularity=2
    )
    ptt = TaskloopPTT(num_nodes=small.num_nodes)
    # walk a few encounters so there is real lifecycle state to move
    for elapsed in (2.0, 1.8, 1.6, 1.4, 1.2):
        cfg = ctrl.next_config(ptt)
        if ctrl.phase is Phase.SETTLED:
            break
        if ctrl.record_next:
            ptt.record(cfg.key, elapsed)
        ctrl.observe(ctrl.record_next)
    doc = ctrl.export_state()

    target = MoldabilityController(
        topology=small, distances=default_distances(small), granularity=2
    )
    target.restore_state(doc)
    assert target.phase == ctrl.phase
    assert target.k == ctrl.k
    assert target.cur_threads == ctrl.cur_threads
    assert target.settled_config == ctrl.settled_config
    assert target.export_state() == doc  # fixed point


def test_moldability_restore_rejects_malformed(small):
    ctrl = MoldabilityController(
        topology=small, distances=default_distances(small), granularity=2
    )
    with pytest.raises(ConfigurationError):
        ctrl.restore_state({"phase": "no-such-phase"})
    with pytest.raises(ConfigurationError):
        ctrl.restore_state({"phase": "settled", "settled": None})


# ----------------------------------------------------------------------
# scheduled crash points
# ----------------------------------------------------------------------

def test_shard_fault_plan_scheduled_overrides_the_draw():
    drawn = ShardFaultPlan(1.0, seed=7, min_placements=2, max_placements=6)
    scheduled = ShardFaultPlan(1.0, seed=7, min_placements=2,
                               max_placements=6, scheduled={"shard-0": 9})
    assert scheduled.decide("shard-0") == 9
    assert scheduled.should_crash("shard-0", 9)
    assert not scheduled.should_crash("shard-0", 8)
    # scheduling one shard never perturbs another's seeded fate
    assert scheduled.decide("shard-1") == drawn.decide("shard-1")
    assert scheduled.decisions()["shard-0"] == 9
    assert scheduled.to_wire()["scheduled"] == {"shard-0": 9}
    with pytest.raises(ServeError):
        ShardFaultPlan(0.0, scheduled={"shard-0": 0})


# ----------------------------------------------------------------------
# client reconnect budget
# ----------------------------------------------------------------------

def test_reconnect_survives_a_restart_and_exhausts_on_a_dead_endpoint(small):
    async def run():
        service = SchedulingService(small, config=_fast_config(), workers=1)
        host, port = await service.start("127.0.0.1", 0)
        client = await ServiceClient.connect(host, port)
        await client.ping()

        # the endpoint survives: one dial suffices, no sleeping
        await client.reconnect(max_attempts=2)
        await client.ping()

        await service.kill()

        naps = []

        async def no_sleep(delay):
            naps.append(delay)

        with pytest.raises(ReconnectExhausted) as excinfo:
            await client.reconnect(max_attempts=3, sleep=no_sleep)
        assert excinfo.value.attempts == 3
        assert excinfo.value.code == "reconnect_exhausted"
        assert len(naps) == 2  # no sleep before the first dial
        await client.close()

    asyncio.run(run())


def test_reconnect_requires_a_remembered_address():
    async def run():
        reader = asyncio.StreamReader()
        with pytest.raises(ProtocolError):
            await ServiceClient(reader, writer=None).reconnect()
        with pytest.raises(ValueError):
            await ServiceClient(reader, None, host="h", port=1).reconnect(
                max_attempts=0
            )

    asyncio.run(run())


# ----------------------------------------------------------------------
# end-to-end: detection, migration, respawn through the router
# ----------------------------------------------------------------------

def _healing_router(*, kill_at, jobs=8, heartbeat_every=1):
    config = _fast_config()
    shards = build_shards(3, dual_socket_small, config=config,
                          queue_capacity=max(jobs, 16), workers=1)
    plan = ShardFaultPlan(0.0, seed=5, scheduled={"shard-1": kill_at})
    membership = Membership(heartbeat_every=heartbeat_every,
                            suspect_after=1, confirm_after=2)
    supervisor = ShardSupervisor(
        respawn_factory(dual_socket_small, config=config,
                        queue_capacity=max(jobs, 16), workers=1),
        max_respawns=1,
    )
    return FederationRouter(shards, seed=3, shard_fault_plan=plan,
                            membership=membership, supervisor=supervisor), plan


def test_router_confirms_death_and_respawns_at_epoch_one():
    async def run():
        router, plan = _healing_router(kill_at=1)
        await router.start()
        for i in range(8):
            await router.submit(JobRequest(benchmark="matmul", timesteps=2,
                                           nodes=1, tenant=f"tenant-{i % 4}"))
        snapshot = await router.drain()
        return snapshot, plan

    snapshot, plan = asyncio.run(run())
    assert plan.crashed == ["shard-1"]
    membership = snapshot["membership"]
    assert membership["deaths_confirmed"] == 1
    assert membership["epochs"]["shard-1"] == 1
    assert membership["respawns"]["respawns_total"] == 1
    # pre-checkpoint crash: the loss is tallied, never silent
    assert membership["migrations_dropped"] >= 0
    # both incarnations appear in the snapshot, conservation on each
    assert "shard-1" in snapshot["shards"]
    assert "shard-1@e1" in snapshot["shards"]
    for iid, shard in snapshot["shards"].items():
        jobs = shard["jobs"]
        assert jobs["submitted"] == (
            jobs["completed"] + jobs["failed"] + jobs["active"]
            + jobs["queued"] + jobs["evicted"]), iid
    states = snapshot["router"]["job_states"]
    assert states["completed"] + states["failed"] == 8


def test_router_supervisor_without_membership_is_rejected():
    config = _fast_config()
    shards = build_shards(2, dual_socket_small, config=config,
                          queue_capacity=8, workers=1)
    supervisor = ShardSupervisor(
        respawn_factory(dual_socket_small, config=config,
                        queue_capacity=8, workers=1))
    with pytest.raises(ProtocolError):
        FederationRouter(shards, supervisor=supervisor)


def test_status_during_detection_window_answers_from_the_stash():
    """Between a silent crash and its confirmation, a crashed shard's
    non-terminal jobs live only in its stashed-orphan list (the dead
    service deleted their records).  A status poll in that window must
    answer from the stash, not leak ``unknown job 'job-...'`` with the
    shard-local id — the bug a closed-loop client polling mid-window
    actually hit."""
    async def run():
        # a huge heartbeat interval keeps the death unconfirmed for the
        # whole submit phase — the detection window under test
        router, plan = _healing_router(kill_at=1, heartbeat_every=100)
        await router.start()
        fed_jobs = []
        for i in range(8):
            fed_jobs.append(await router.submit(JobRequest(
                benchmark="matmul", timesteps=2, nodes=1,
                tenant=f"tenant-{i % 4}")))
        assert plan.crashed == ["shard-1"]
        handle = router.instances["shard-1"]
        assert not handle.alive and handle.stashed_orphans
        windowed = [
            job for job in fed_jobs
            if job.shard_id == "shard-1"
            and job.local_job_id not in handle.service.records
        ]
        assert windowed, "the scheduled crash must strand a job"
        for job in windowed:
            wire = router.status(job.fed_id)
            assert wire["job_id"] == job.fed_id
            assert wire["shard"] == "shard-1"
            assert wire["state"] in ("queued", "running")
        # the tally sees them too: nothing vanishes during the window
        states = router.job_states()
        assert sum(states.values()) == 8
        with pytest.raises(ProtocolError):
            router.status("fed-99999")
        # drain flushes detection: recovery still lands afterwards
        snapshot = await router.drain()
        return snapshot

    snapshot = asyncio.run(run())
    assert snapshot["membership"]["deaths_confirmed"] == 1
    states = snapshot["router"]["job_states"]
    assert states["completed"] + states["failed"] == 8


def test_pump_detection_confirms_death_without_new_placements():
    """Closed-loop liveness: once every client is polling a stranded job,
    the placement clock is frozen — no submissions, no heartbeats, no
    confirmation, ever.  Status traffic pumps the detector instead, so
    repeated pump rounds alone must confirm the death and hand the
    stashed orphans to recovery."""
    async def run():
        router, plan = _healing_router(kill_at=1, heartbeat_every=100)
        await router.start()
        for i in range(8):
            await router.submit(JobRequest(benchmark="matmul", timesteps=2,
                                           nodes=1, tenant=f"tenant-{i % 4}"))
        assert plan.crashed == ["shard-1"]
        assert router._undetected_crashes() == ["shard-1"]
        await router.pump_detection()  # first missed poll: suspect
        assert router._undetected_crashes() == ["shard-1"]
        await router.pump_detection()  # second missed poll: confirmed
        assert router._undetected_crashes() == []
        heartbeats = router.heartbeats
        await router.pump_detection()  # healthy fleet: a no-op
        assert router.heartbeats == heartbeats
        return await router.drain()

    snapshot = asyncio.run(run())
    membership = snapshot["membership"]
    assert membership["deaths_confirmed"] == 1
    assert membership["epochs"]["shard-1"] == 1
    assert membership["respawns"]["respawns_total"] == 1
    states = snapshot["router"]["job_states"]
    assert states["completed"] + states["failed"] == 8


def test_leave_shard_migrates_state_without_loss():
    async def run():
        config = _fast_config()
        shards = build_shards(3, dual_socket_small, config=config,
                              queue_capacity=16, workers=1)
        membership = Membership(heartbeat_every=1, suspect_after=1,
                                confirm_after=2)
        router = FederationRouter(shards, seed=3, membership=membership)
        await router.start()
        for i in range(6):
            await router.submit(JobRequest(benchmark="matmul", timesteps=2,
                                           nodes=1, tenant=f"tenant-{i % 3}"))
        # let everything finish so each tenant has warm state somewhere
        while True:
            states = router.job_states()
            if states["queued"] == states["running"] == 0:
                break
            await asyncio.sleep(0.01)
        victim = sorted(router.shards)[0]
        await router.leave_shard(victim)
        snapshot = await router.drain()
        return victim, snapshot

    victim, snapshot = asyncio.run(run())
    membership = snapshot["membership"]
    assert membership["detector"]["counters"]["leaves"] == 1
    # a voluntary leave exports everything first: drops are impossible
    assert membership["migrations_dropped"] == 0
    assert victim not in snapshot["fleet"]["alive"]
    states = snapshot["router"]["job_states"]
    assert states["completed"] + states["failed"] == 6
