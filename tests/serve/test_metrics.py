"""Unit tests for the metrics registry and percentile helper."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.metrics import LatencyReservoir, ServiceMetrics, percentile


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------
def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_percentile_known_values():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 0) == 1.0
    assert percentile(vals, 100) == 4.0
    assert percentile(vals, 50) == pytest.approx(2.5)
    assert percentile([7.0], 95) == 7.0


@given(
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
    q=st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_matches_numpy(values, q):
    assert percentile(values, q) == pytest.approx(
        float(np.percentile(np.asarray(values), q)), rel=1e-9, abs=1e-9
    )


# ----------------------------------------------------------------------
# ServiceMetrics
# ----------------------------------------------------------------------
def test_latency_summary_empty():
    assert ServiceMetrics(clock=FakeClock()).latency_summary() == {"count": 0}


def test_counters_and_latency_summary():
    m = ServiceMetrics(clock=FakeClock())
    for lat in (1.0, 2.0, 3.0):
        m.record_submitted()
        m.record_completed(lat)
    m.record_submitted()
    m.record_failed(10.0)
    m.record_rejected("queue_full")
    m.record_rejected("queue_full")
    m.record_rejected("draining")

    assert (m.submitted, m.completed, m.failed) == (4, 3, 1)
    assert m.rejected == {"queue_full": 2, "draining": 1}
    assert m.rejected_total == 3
    summary = m.latency_summary()
    assert summary["count"] == 4  # failed jobs count toward latency too
    assert summary["max_s"] == 10.0
    assert summary["mean_s"] == pytest.approx(4.0)


def test_throughput_uses_first_submission_epoch():
    clock = FakeClock(start=50.0)
    m = ServiceMetrics(clock=clock)
    assert m.throughput() == 0.0  # nothing submitted yet
    clock.now = 60.0
    m.record_submitted()
    m.record_submitted()
    clock.now = 70.0  # 10 s since first submit
    m.record_completed(1.0)
    m.record_completed(1.0)
    assert m.throughput() == pytest.approx(0.2)


def test_snapshot_shape_and_conservation():
    clock = FakeClock()
    m = ServiceMetrics(clock=clock)
    for _ in range(5):
        m.record_submitted()
    m.record_completed(0.5)
    m.record_failed(0.1)
    m.record_rejected("queue_full")
    clock.now += 2.0

    snap = m.snapshot(
        queue_depth=1,
        queue_capacity=4,
        draining=False,
        active=2,
        queued=1,
        lease_map={0: "job-1", 1: "job-1", 2: None, 3: "job-2"},
        waiting_for_lease=["job-5"],
        jobs={"job-1": {"state": "running"}},
    )
    jobs = snap["jobs"]
    # conservation: every submitted job is accounted for exactly once
    assert jobs["submitted"] == jobs["completed"] + jobs["failed"] + jobs["active"] + jobs["queued"]
    assert jobs["rejected_total"] == 1  # rejected counted separately
    assert snap["service"]["uptime_s"] == pytest.approx(2.0)
    assert snap["queue"] == {"depth": 1, "capacity": 4}
    assert snap["nodes"]["leases"] == {"0": "job-1", "1": "job-1", "2": None, "3": "job-2"}
    assert snap["nodes"]["free"] == [2]
    assert snap["nodes"]["waiting_for_lease"] == ["job-5"]
    assert snap["per_job"]["job-1"]["state"] == "running"


# ----------------------------------------------------------------------
# LatencyReservoir: bounded, exact aggregates, seeded sampling
# ----------------------------------------------------------------------
def test_reservoir_is_exact_below_capacity():
    r = LatencyReservoir(capacity=8, seed=0)
    for v in [3.0, 1.0, 2.0]:
        r.add(v)
    assert len(r) == 3
    assert sorted(r.sample) == [1.0, 2.0, 3.0]
    s = r.summary()
    assert s["count"] == 3
    assert s["mean_s"] == pytest.approx(2.0)
    assert s["max_s"] == 3.0
    # below capacity the percentiles are over the full data, unchanged
    assert s["p50_s"] == percentile([1.0, 2.0, 3.0], 50)
    assert s["p95_s"] == percentile([1.0, 2.0, 3.0], 95)


def test_reservoir_memory_stays_bounded():
    r = LatencyReservoir(capacity=16, seed=0)
    for i in range(10_000):
        r.add(float(i))
    assert len(r) == 10_000          # observations seen
    assert len(r.sample) == 16       # retained sample is bounded
    s = r.summary()
    # count/sum/max stay exact even though the sample is bounded
    assert s["count"] == 10_000
    assert s["mean_s"] == pytest.approx(4999.5)
    assert s["max_s"] == 9999.0


def test_reservoir_sampling_is_seed_deterministic():
    def fill(seed):
        r = LatencyReservoir(capacity=8, seed=seed)
        for i in range(500):
            r.add(float(i))
        return r.sample

    assert fill(7) == fill(7)
    assert fill(7) != fill(8)


def test_reservoir_sample_is_roughly_uniform():
    # every retained value should be drawn from the whole stream, not
    # just a prefix/suffix window
    r = LatencyReservoir(capacity=64, seed=3)
    for i in range(6400):
        r.add(float(i))
    sample = r.sample
    assert len(sample) == 64
    assert min(sample) < 3200 < max(sample)


def test_reservoir_rejects_bad_capacity():
    with pytest.raises(ValueError):
        LatencyReservoir(capacity=0)


def test_reservoir_empty_summary():
    assert LatencyReservoir().summary() == {"count": 0}


def test_metrics_latencies_are_bounded_and_recovery_counters_count():
    clock = FakeClock()
    m = ServiceMetrics(clock=clock, reservoir_size=4)
    for i in range(100):
        m.record_completed(float(i))
    assert len(m._latencies.sample) == 4
    assert m.latency_summary()["count"] == 100

    m.record_retried()
    m.record_retried()
    m.record_requeued()
    m.record_deadline_exceeded()
    m.record_lease_reclaimed()
    snap = m.snapshot(
        queue_depth=0, queue_capacity=4, draining=False, active=0, queued=0,
        lease_map={}, waiting_for_lease=[], jobs={},
        faults_injected={"crash": 2},
    )
    assert snap["recovery"] == {
        "retried": 2,
        "requeued": 1,
        "deadline_exceeded": 1,
        "leases_reclaimed": 1,
        "faults_injected": {"crash": 2},
    }
