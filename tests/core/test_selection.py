"""Unit tests for Algorithm 1 (thread-count selection)."""

import pytest

from repro.core.selection import (
    initial_threads,
    midpoint_threads,
    select_next_threads,
)
from repro.errors import ConfigurationError


class TestInitialThreads:
    def test_k1_full_machine(self):
        assert initial_threads(1, 64, 8) == 64

    def test_k2_half(self):
        assert initial_threads(2, 64, 8) == 32

    def test_k2_respects_granularity(self):
        assert initial_threads(2, 24, 8) == 8  # 12 floored to 8

    def test_k2_floor_at_g(self):
        assert initial_threads(2, 8, 8) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            initial_threads(3, 64, 8)
        with pytest.raises(ConfigurationError):
            initial_threads(1, 7, 8)  # m_max < g
        with pytest.raises(ConfigurationError):
            initial_threads(1, 20, 8)  # not a multiple


class TestMidpoint:
    def test_paper_formula(self):
        # lower + floor((diff/2)/g) * g
        assert midpoint_threads(64, 32, 8) == 48
        assert midpoint_threads(32, 64, 8) == 48
        assert midpoint_threads(8, 32, 8) == 16
        assert midpoint_threads(8, 64, 8) == 32

    def test_rounds_down_to_granularity(self):
        assert midpoint_threads(8, 20, 8) == 8  # diff 12 -> floor(6/8)=0


class TestSelectNextThreads:
    def test_k3_special_case_explores_smallest(self):
        """Half beat full at k=2 -> probe the smallest configuration."""
        per = {64: 2.0, 32: 1.0}
        sel = select_next_threads(per, cur_threads=32, k=3, g=8)
        assert sel.threads == 8
        assert not sel.search_finished

    def test_k3_special_case_when_half_equals_g(self):
        """m_max/2 == g: the smallest config already ran -> finish on best."""
        per = {16: 2.0, 8: 1.0}
        sel = select_next_threads(per, cur_threads=8, k=3, g=8)
        assert sel.search_finished
        assert sel.threads == 8

    def test_k3_full_faster_goes_to_midpoint(self):
        per = {64: 1.0, 32: 2.0}
        sel = select_next_threads(per, cur_threads=32, k=3, g=8)
        assert sel.threads == 48
        assert not sel.search_finished

    def test_within_granularity_finishes(self):
        per = {64: 1.5, 56: 1.0}
        sel = select_next_threads(per, cur_threads=56, k=5, g=8)
        assert sel.search_finished
        assert sel.threads == 56

    def test_midpoint_already_explored_finishes(self):
        per = {64: 1.5, 32: 1.0, 48: 2.0}
        # best=32, second=64, midpoint=48 already in the table
        sel = select_next_threads(per, cur_threads=48, k=5, g=8)
        assert sel.search_finished
        assert sel.threads == 32

    def test_full_search_converges(self):
        """Simulated sequence on a 64-core/g=8 machine with optimum 24."""

        def time_for(threads):
            return abs(threads - 24) + 10.0

        per = {64: time_for(64), 32: time_for(32)}
        cur = 32
        k = 3
        for _ in range(10):
            sel = select_next_threads(per, cur, k, 8)
            if sel.search_finished:
                break
            cur = sel.threads
            per[cur] = min(per.get(cur, float("inf")), time_for(cur))
            k += 1
        assert sel.search_finished
        assert sel.threads == 24

    def test_converges_to_max_when_scaling_is_perfect(self):
        def time_for(threads):
            return 64.0 / threads

        per = {64: time_for(64), 32: time_for(32)}
        cur, k = 32, 3
        for _ in range(10):
            sel = select_next_threads(per, cur, k, 8)
            if sel.search_finished:
                break
            cur = sel.threads
            per[cur] = time_for(cur)
            k += 1
        assert sel.threads == 64

    def test_exploration_cost_is_logarithmic(self):
        """The search must finish within ~log2(m_max/g) + 2 probes."""
        def time_for(threads):
            return abs(threads - 40) + 5.0

        per = {64: time_for(64), 32: time_for(32)}
        cur, k, probes = 32, 3, 0
        while True:
            sel = select_next_threads(per, cur, k, 8)
            if sel.search_finished:
                break
            probes += 1
            cur = sel.threads
            per[cur] = time_for(cur)
            k += 1
            assert probes < 8
        assert probes <= 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            select_next_threads({64: 1.0, 32: 2.0}, 32, k=2, g=8)
        with pytest.raises(ConfigurationError):
            select_next_threads({64: 1.0}, 64, k=3, g=8)
        with pytest.raises(ConfigurationError):
            select_next_threads({64: 1.0, 32: 2.0}, 32, k=3, g=0)
