"""Integration tests for the ILAN scheduler plugins."""

import pytest

from repro.core.moldability import Phase
from repro.core.scheduler import IlanNoMoldScheduler, IlanScheduler
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.worksteal import HierarchicalStealPolicy
from tests.conftest import make_work


def run_encounters(ctx, sched, work, n):
    ex = TaskloopExecutor(ctx)
    results = []
    for _ in range(n):
        plan = sched.plan(work, ctx)
        result = ex.run(work, plan)
        sched.record(work, plan, result)
        results.append(result)
    return results


class TestIlanPlan:
    def test_first_encounter_uses_all_cores_strict(self, small_ctx):
        sched = IlanScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        assert plan.num_threads == 16
        assert plan.steal_mode == "strict"
        assert isinstance(plan.policy, HierarchicalStealPolicy)
        assert not plan.policy.allow_inter_node
        assert not plan.owner_lifo

    def test_chunks_enqueued_on_node_primaries(self, small_ctx):
        sched = IlanScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        used = sorted(c for c, chunks in plan.initial_queues.items() if chunks)
        # primaries of the 4 nodes of the 16-core machine
        assert used == [0, 4, 8, 12]

    def test_strict_fraction_applied(self, small_ctx):
        sched = IlanScheduler(strict_fraction=0.5)
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        chunks = [c for q in plan.initial_queues.values() for c in q]
        assert sum(c.strict for c in chunks) == 8

    def test_selection_overhead_charged(self, small_ctx):
        sched = IlanScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        assert plan.extra_overhead > 0

    def test_granularity_defaults_to_node_size(self, small_ctx):
        sched = IlanScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        sched.plan(work, small_ctx)
        assert sched.controller(work.uid).granularity == 4

    def test_custom_granularity(self, small_ctx):
        sched = IlanScheduler(granularity=2)
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        sched.plan(work, small_ctx)
        assert sched.controller(work.uid).granularity == 2


class TestIlanLearning:
    def test_settles_within_encounters(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler()
        work = make_work(ctx, num_tasks=16, total_iters=64, mem_frac=0.2)
        run_encounters(ctx, sched, work, 12)
        assert sched.controller(work.uid).phase is Phase.SETTLED

    def test_settled_config_stable(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler()
        work = make_work(ctx, num_tasks=16, total_iters=64, mem_frac=0.2)
        run_encounters(ctx, sched, work, 12)
        r1 = run_encounters(ctx, sched, work, 2)
        assert r1[0].num_threads == r1[1].num_threads
        assert r1[0].node_mask_bits == r1[1].node_mask_bits
        assert r1[0].steal_policy == r1[1].steal_policy

    def test_per_taskloop_state_independent(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler()
        wa = make_work(ctx, uid="app.a", num_tasks=16, total_iters=64)
        wb = make_work(ctx, uid="app.b", region_name="other", num_tasks=16, total_iters=64)
        run_encounters(ctx, sched, wa, 3)
        run_encounters(ctx, sched, wb, 1)
        assert sched.controller("app.a").k != sched.controller("app.b").k

    def test_reset_clears_state(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler()
        work = make_work(ctx, num_tasks=16, total_iters=64)
        run_encounters(ctx, sched, work, 3)
        sched.reset()
        plan = sched.plan(work, ctx)
        assert plan.num_threads == 16  # back to warmup full machine

    def test_warmup_not_in_ptt(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler()
        work = make_work(ctx, num_tasks=16, total_iters=64)
        run_encounters(ctx, sched, work, 1)
        assert sched.ptt.table(work.uid).executions == 0
        run_encounters(ctx, sched, work, 1)
        assert sched.ptt.table(work.uid).executions == 1


class TestNoMold:
    def test_always_full_machine(self, small_ctx):
        sched = IlanNoMoldScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        assert plan.num_threads == 16
        assert plan.steal_mode == "full"
        assert plan.policy.allow_inter_node

    def test_hierarchical_distribution_kept(self, small_ctx):
        sched = IlanNoMoldScheduler()
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, small_ctx)
        used = sorted(c for c, chunks in plan.initial_queues.items() if chunks)
        assert used == [0, 4, 8, 12]

    def test_stateless_across_encounters(self, small):
        ctx = RunContext.create(small, seed=0)
        sched = IlanNoMoldScheduler()
        work = make_work(ctx, num_tasks=16, total_iters=64)
        results = run_encounters(ctx, sched, work, 3)
        assert all(r.num_threads == 16 for r in results)
