"""Unit tests for the steal-policy trial evaluation."""

from repro.core.config import StealPolicyMode
from repro.core.ptt import TaskloopPTT
from repro.core.steal_eval import evaluate_steal_policy


def table(strict=None, full=None, threads=16, mask=0b11):
    t = TaskloopPTT(num_nodes=8)
    if strict is not None:
        t.record((threads, mask, "strict"), strict)
    if full is not None:
        t.record((threads, mask, "full"), full)
    return t


def test_full_wins_when_faster():
    t = table(strict=2.0, full=1.0)
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.FULL


def test_strict_wins_when_faster():
    t = table(strict=1.0, full=2.0)
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.STRICT


def test_tie_keeps_strict():
    t = table(strict=1.0, full=1.0)
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.STRICT


def test_missing_full_keeps_strict():
    t = table(strict=1.0)
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.STRICT


def test_missing_strict_uses_full():
    t = table(full=1.0)
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.FULL


def test_no_data_defaults_strict():
    assert evaluate_steal_policy(TaskloopPTT(num_nodes=8), 16, 0b11) is StealPolicyMode.STRICT


def test_other_configs_ignored():
    t = table(strict=5.0, full=4.0)
    t.record((32, 0b1111, "full"), 0.1)  # different threads: irrelevant
    assert evaluate_steal_policy(t, 16, 0b11) is StealPolicyMode.FULL
