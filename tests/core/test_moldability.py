"""Unit tests for the moldability exploration state machine."""

import numpy as np
import pytest

from repro.core.config import StealPolicyMode
from repro.core.moldability import MoldabilityController, Phase
from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError
from repro.topology.presets import default_distances


@pytest.fixture
def ctrl(zen4):
    return MoldabilityController(
        topology=zen4, distances=default_distances(zen4), granularity=8
    )


@pytest.fixture
def ptt():
    return TaskloopPTT(num_nodes=8)


def run_encounter(ctrl, ptt, cfg, elapsed):
    """Simulate one encounter: record (if applicable) + state advance."""
    phase = ctrl.phase
    recorded = ctrl.record_next
    if recorded:
        perf = np.full(cfg.node_mask.width, np.nan)
        for n in cfg.node_mask.indices():
            perf[n] = 1.0
        ptt.record(cfg.key, elapsed, perf)
    ctrl.observe(recorded)
    if phase is Phase.TRIAL:
        ctrl.finish_trial(ptt)


def drive(ctrl, ptt, time_for, max_encounters=20):
    """Run encounters until settled; returns the config history."""
    history = []
    for _ in range(max_encounters):
        cfg = ctrl.next_config(ptt)
        history.append(cfg)
        if ctrl.phase is Phase.SETTLED:
            break
        run_encounter(ctrl, ptt, cfg, time_for(cfg))
    return history


class TestLifecycle:
    def test_warmup_not_recorded(self, ctrl, ptt):
        cfg = ctrl.next_config(ptt)
        assert ctrl.phase is Phase.WARMUP
        assert not ctrl.record_next
        assert cfg.num_threads == 64
        assert cfg.steal_policy is StealPolicyMode.STRICT
        run_encounter(ctrl, ptt, cfg, 1.0)
        assert ctrl.phase is Phase.BOOTSTRAP
        assert ptt.executions == 0

    def test_bootstrap_sequence(self, ctrl, ptt):
        run_encounter(ctrl, ptt, ctrl.next_config(ptt), 1.0)  # warmup
        c1 = ctrl.next_config(ptt)
        assert c1.num_threads == 64
        run_encounter(ctrl, ptt, c1, 1.0)
        c2 = ctrl.next_config(ptt)
        assert c2.num_threads == 32
        assert ctrl.phase is Phase.SEARCH

    def test_converges_to_contention_optimum(self, ctrl, ptt):
        def time_for(cfg):
            return abs(cfg.num_threads - 24) + 10.0

        history = drive(ctrl, ptt, time_for)
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.settled_config.num_threads == 24
        # settled config repeats afterwards
        again = ctrl.next_config(ptt)
        assert again == ctrl.settled_config

    def test_converges_to_full_machine_when_scaling(self, ctrl, ptt):
        def time_for(cfg):
            return 64.0 / cfg.num_threads

        drive(ctrl, ptt, time_for)
        assert ctrl.settled_config.num_threads == 64

    def test_trial_runs_full_policy_once(self, ctrl, ptt):
        def time_for(cfg):
            return 64.0 / cfg.num_threads

        history = drive(ctrl, ptt, time_for)
        trial_cfgs = [c for c in history if c.steal_policy is StealPolicyMode.FULL]
        assert len(trial_cfgs) == 1

    def test_steal_policy_kept_when_full_faster(self, ctrl, ptt):
        def time_for(cfg):
            base = 64.0 / cfg.num_threads
            return base * (0.9 if cfg.steal_policy is StealPolicyMode.FULL else 1.0)

        drive(ctrl, ptt, time_for)
        assert ctrl.settled_config.steal_policy is StealPolicyMode.FULL

    def test_steal_policy_reverts_when_full_slower(self, ctrl, ptt):
        def time_for(cfg):
            base = 64.0 / cfg.num_threads
            return base * (1.5 if cfg.steal_policy is StealPolicyMode.FULL else 1.0)

        drive(ctrl, ptt, time_for)
        assert ctrl.settled_config.steal_policy is StealPolicyMode.STRICT

    def test_exploration_is_bounded(self, ctrl, ptt):
        def time_for(cfg):
            return abs(cfg.num_threads - 40) + 1.0

        history = drive(ctrl, ptt, time_for)
        # warmup + 2 bootstrap + <= 4 search probes + <= confirm + trial
        assert len(history) <= 10

    def test_node_mask_sized_to_threads(self, ctrl, ptt):
        def time_for(cfg):
            return abs(cfg.num_threads - 24) + 10.0

        drive(ctrl, ptt, time_for)
        cfg = ctrl.settled_config
        assert cfg.node_mask.count() == 3  # 24 threads / 8 per node


class TestUmaMachine:
    def test_single_node_settles_quickly(self, uma):
        ctrl = MoldabilityController(
            topology=uma, distances=default_distances(uma), granularity=4
        )
        ptt = TaskloopPTT(num_nodes=1)
        history = drive(ctrl, ptt, lambda cfg: 1.0)
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.settled_config.num_threads == 4
        assert len(history) <= 4


class TestValidation:
    def test_bad_granularity(self, zen4):
        dist = default_distances(zen4)
        with pytest.raises(ConfigurationError):
            MoldabilityController(topology=zen4, distances=dist, granularity=0)
        with pytest.raises(ConfigurationError):
            MoldabilityController(topology=zen4, distances=dist, granularity=65)
        with pytest.raises(ConfigurationError):
            MoldabilityController(topology=zen4, distances=dist, granularity=7)

    def test_finish_trial_wrong_phase(self, ctrl, ptt):
        with pytest.raises(ConfigurationError):
            ctrl.finish_trial(ptt)


class TestConfirmPhase:
    def test_mask_drift_triggers_confirmation(self, ctrl, ptt):
        """If the node-perf ranking shifts while exploring, the settled
        (threads, mask) pair may never have run under strict; the
        controller must insert one strict confirmation execution before
        the full-stealing trial."""
        import numpy as np

        # warmup
        cfg = ctrl.next_config(ptt)
        run_encounter(ctrl, ptt, cfg, 1.0)
        # k=1 at 64 threads
        cfg = ctrl.next_config(ptt)
        run_encounter(ctrl, ptt, cfg, 2.0)
        # k=2 at 32 threads: slower, so 64 stays best
        cfg = ctrl.next_config(ptt)
        assert cfg.num_threads == 32
        mask_explored = cfg.node_mask.bits
        run_encounter(ctrl, ptt, cfg, 5.0)
        # force the search to finish quickly: make midpoints look explored
        # by driving it until finished while shifting node performance so
        # the mask chosen at settle time differs from anything recorded
        for _ in range(10):
            if ctrl.phase is not Phase.SEARCH:
                break
            cfg = ctrl.next_config(ptt)
            if ctrl.phase in (Phase.CONFIRM, Phase.TRIAL):
                break
            run_encounter(ctrl, ptt, cfg, 3.0 + cfg.num_threads * 0.01)
        # the controller either confirmed (mask drift) or went straight to
        # trial (no drift); both must end settled on a strict-backed config
        for _ in range(4):
            if ctrl.phase is Phase.SETTLED:
                break
            cfg = ctrl.next_config(ptt)
            run_encounter(ctrl, ptt, cfg, 2.5)
        assert ctrl.phase is Phase.SETTLED

    def test_confirm_config_is_strict(self, ctrl, ptt):
        """Directly drive into CONFIRM by removing the strict entry."""
        ctrl.phase = Phase.SEARCH
        ctrl.best_threads = 16
        ctrl.k = 5
        # PTT has two thread counts within granularity -> search finishes
        ptt.record((16, 0b11, "strict"), 1.0)
        ptt.record((24, 0b111, "strict"), 2.0)
        # wipe the exact strict key the settle-time mask would use by
        # making node 7 look fastest (mask will be {7,...}, not recorded)
        perf = np.full(8, 1.0)
        perf[7] = 9.0
        ptt._update_node_perf(perf)
        cfg = ctrl.next_config(ptt)
        assert ctrl.phase is Phase.CONFIRM
        assert cfg.steal_policy.value == "strict"
        assert cfg.num_threads == 16
        assert 7 in cfg.node_mask.indices()


class TestDriftReexploration:
    @pytest.fixture
    def adaptive(self, zen4):
        return MoldabilityController(
            topology=zen4,
            distances=default_distances(zen4),
            granularity=8,
            reexplore=True,
            drift_threshold=0.3,
            drift_window=2,
        )

    def settle(self, ctrl, ptt, base=2.0):
        drive(ctrl, ptt, lambda cfg: base)
        assert ctrl.phase is Phase.SETTLED
        key = ctrl.settled_config.key
        mean = ptt.mean_time(key)
        assert mean is not None
        return key, mean

    def test_disabled_controller_never_reexplores(self, ctrl, ptt):
        key, mean = self.settle(ctrl, ptt)
        for _ in range(5):
            assert not ctrl.note_settled_time(ptt, key, mean * 10.0)
        assert ctrl.phase is Phase.SETTLED
        assert ctrl.reexplorations == 0

    def test_within_threshold_is_quiet(self, adaptive, ptt):
        key, mean = self.settle(adaptive, ptt)
        assert not adaptive.note_settled_time(ptt, key, mean * 1.2)
        assert adaptive.drift_count == 0
        assert adaptive.phase is Phase.SETTLED

    def test_consecutive_drift_triggers(self, adaptive, ptt):
        key, mean = self.settle(adaptive, ptt)
        gen_before = ptt.generation
        assert not adaptive.note_settled_time(ptt, key, mean * 2.0)
        assert adaptive.drift_count == 1
        assert adaptive.note_settled_time(ptt, key, mean * 2.0)
        assert adaptive.phase is Phase.BOOTSTRAP
        assert adaptive.k == 0
        assert adaptive.settled_config is None
        assert adaptive.reexplorations == 1
        assert ptt.entries == {}
        assert ptt.generation == gen_before + 1

    def test_nonconsecutive_drift_resets_the_window(self, adaptive, ptt):
        key, mean = self.settle(adaptive, ptt)
        assert not adaptive.note_settled_time(ptt, key, mean * 2.0)
        assert not adaptive.note_settled_time(ptt, key, mean)  # back in band
        assert adaptive.drift_count == 0
        assert not adaptive.note_settled_time(ptt, key, mean * 2.0)
        assert adaptive.phase is Phase.SETTLED

    def test_faster_drift_also_triggers(self, adaptive, ptt):
        """Recovery (the machine speeding back up) must re-learn too."""
        key, mean = self.settle(adaptive, ptt)
        assert not adaptive.note_settled_time(ptt, key, mean * 0.4)
        assert adaptive.note_settled_time(ptt, key, mean * 0.4)
        assert adaptive.phase is Phase.BOOTSTRAP

    def test_entries_relearned_not_resurrected(self, adaptive, ptt):
        key, mean = self.settle(adaptive, ptt)
        adaptive.note_settled_time(ptt, key, mean * 2.0)
        adaptive.note_settled_time(ptt, key, mean * 2.0)
        gen = ptt.generation
        assert ptt.entries == {}
        # node_perf EMA survives the invalidation (it adapts on its own)
        assert not np.all(np.isnan(ptt.node_perf))
        # second lifecycle: no WARMUP (k reset, but record_next stays on),
        # the table repopulates from fresh measurements of the new regime
        key2, mean2 = self.settle(adaptive, ptt, base=4.0)
        assert ptt.generation == gen  # no further invalidation
        assert mean2 == pytest.approx(4.0)
        assert all(stats.count >= 1 for stats in ptt.entries.values())

    def test_missing_mean_is_quiet(self, adaptive, ptt):
        key, mean = self.settle(adaptive, ptt)
        assert not adaptive.note_settled_time(ptt, ("no", 1, "such"), 99.0)
        assert adaptive.drift_count == 0

    def test_drift_param_validation(self, zen4):
        with pytest.raises(ConfigurationError):
            MoldabilityController(
                topology=zen4, distances=default_distances(zen4),
                granularity=8, drift_threshold=0.0,
            )
        with pytest.raises(ConfigurationError):
            MoldabilityController(
                topology=zen4, distances=default_distances(zen4),
                granularity=8, drift_window=0,
            )
