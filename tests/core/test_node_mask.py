"""Unit tests for GetNUMAMask and worker-core selection."""

import numpy as np
import pytest

from repro.core.node_mask import get_numa_mask, nodes_needed, worker_cores_for_mask
from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask
from repro.topology.presets import default_distances


@pytest.fixture
def zen4_dist(zen4):
    return default_distances(zen4)


def ptt_with_perf(num_nodes, perf):
    t = TaskloopPTT(num_nodes=num_nodes)
    t.record((1, 1, "strict"), 1.0, node_perf=np.asarray(perf, dtype=float))
    return t


class TestNodesNeeded:
    def test_exact_nodes(self, zen4):
        assert nodes_needed(64, zen4) == 8
        assert nodes_needed(8, zen4) == 1
        assert nodes_needed(16, zen4) == 2

    def test_partial_node_rounds_up(self, zen4):
        assert nodes_needed(9, zen4) == 2
        assert nodes_needed(1, zen4) == 1

    def test_capped_at_machine(self, zen4):
        assert nodes_needed(1000, zen4) == 8

    def test_validation(self, zen4):
        with pytest.raises(ConfigurationError):
            nodes_needed(0, zen4)


class TestGetNumaMask:
    def test_fastest_node_first(self, zen4, zen4_dist):
        ptt = ptt_with_perf(8, [1, 1, 1, 1, 1, 9, 1, 1])
        mask = get_numa_mask(8, ptt, zen4, zen4_dist)
        assert mask.indices() == [5]

    def test_growth_prefers_same_socket(self, zen4, zen4_dist):
        # fastest is node 5 (socket 1); the next three must be 4, 6, 7
        ptt = ptt_with_perf(8, [1, 1, 1, 1, 1, 9, 1, 1])
        mask = get_numa_mask(32, ptt, zen4, zen4_dist)
        assert set(mask.indices()) == {4, 5, 6, 7}

    def test_same_socket_tie_breaks_on_perf(self, zen4, zen4_dist):
        ptt = ptt_with_perf(8, [1, 2, 8, 3, 1, 1, 1, 1])
        mask = get_numa_mask(16, ptt, zen4, zen4_dist)
        # fastest is 2; next same-socket candidate with best perf is 3
        assert set(mask.indices()) == {2, 3}

    def test_crosses_socket_when_needed(self, zen4, zen4_dist):
        ptt = ptt_with_perf(8, [9, 1, 1, 1, 1, 1, 1, 1])
        mask = get_numa_mask(48, ptt, zen4, zen4_dist)
        assert set(mask.indices()) >= {0, 1, 2, 3}
        assert mask.count() == 6

    def test_no_data_defaults_to_node0(self, zen4, zen4_dist):
        ptt = TaskloopPTT(num_nodes=8)
        mask = get_numa_mask(16, ptt, zen4, zen4_dist)
        assert 0 in mask.indices()
        assert mask.count() == 2

    def test_full_machine(self, zen4, zen4_dist):
        ptt = TaskloopPTT(num_nodes=8)
        assert get_numa_mask(64, ptt, zen4, zen4_dist).count() == 8


class TestWorkerCores:
    def test_whole_nodes(self, zen4):
        mask = NodeMask.from_indices([2, 5], 8)
        cores = worker_cores_for_mask(16, mask, zen4)
        assert cores == list(range(16, 24)) + list(range(40, 48))

    def test_partial_last_node(self, zen4):
        mask = NodeMask.from_indices([0, 1], 8)
        cores = worker_cores_for_mask(12, mask, zen4)
        assert cores == list(range(0, 8)) + list(range(8, 12))

    def test_too_few_cores_in_mask(self, zen4):
        mask = NodeMask.from_indices([0], 8)
        with pytest.raises(ConfigurationError):
            worker_cores_for_mask(16, mask, zen4)

    def test_validation(self, zen4):
        with pytest.raises(ConfigurationError):
            worker_cores_for_mask(0, NodeMask.from_indices([0], 8), zen4)
