"""Unit tests for the Performance Trace Table."""

import numpy as np
import pytest

from repro.core.ptt import ExecStats, PerformanceTraceTable, TaskloopPTT
from repro.errors import ConfigurationError


class TestExecStats:
    def test_welford_mean_std(self):
        s = ExecStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            s.add(v)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.min_time == 1.0

    def test_single_sample_no_variance(self):
        s = ExecStats()
        s.add(2.0)
        assert s.variance == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecStats().add(-1.0)


class TestTaskloopPTT:
    def test_record_and_mean(self):
        t = TaskloopPTT(num_nodes=4)
        key = (8, 0b11, "strict")
        t.record(key, 1.0)
        t.record(key, 3.0)
        assert t.mean_time(key) == pytest.approx(2.0)
        assert t.executions == 2

    def test_mean_time_missing(self):
        t = TaskloopPTT(num_nodes=4)
        assert t.mean_time((8, 1, "strict")) is None

    def test_best_time_per_thread_count_filters_policy(self):
        t = TaskloopPTT(num_nodes=4)
        t.record((8, 1, "strict"), 2.0)
        t.record((8, 1, "full"), 0.5)
        t.record((16, 3, "strict"), 1.0)
        per = t.best_time_per_thread_count(policy="strict")
        assert per == {8: 2.0, 16: 1.0}
        per_all = t.best_time_per_thread_count(policy=None)
        assert per_all[8] == 0.5

    def test_best_per_thread_count_takes_min_over_masks(self):
        t = TaskloopPTT(num_nodes=4)
        t.record((8, 0b0011, "strict"), 2.0)
        t.record((8, 0b1100, "strict"), 1.5)
        assert t.best_time_per_thread_count()[8] == 1.5

    def test_fastest_two(self):
        t = TaskloopPTT(num_nodes=4)
        t.record((32, 0xF, "strict"), 3.0)
        t.record((16, 0x3, "strict"), 1.0)
        t.record((8, 0x1, "strict"), 2.0)
        (best_t, best_v), (second_t, second_v) = t.fastest_two()
        assert (best_t, best_v) == (16, 1.0)
        assert (second_t, second_v) == (8, 2.0)

    def test_fastest_two_needs_two_counts(self):
        t = TaskloopPTT(num_nodes=4)
        t.record((8, 1, "strict"), 1.0)
        with pytest.raises(ConfigurationError):
            t.fastest_two()

    def test_node_perf_ewma(self):
        t = TaskloopPTT(num_nodes=2, node_perf_alpha=0.5)
        t.record((2, 3, "strict"), 1.0, node_perf=np.array([1.0, np.nan]))
        assert t.node_perf[0] == 1.0
        assert np.isnan(t.node_perf[1])
        t.record((2, 3, "strict"), 1.0, node_perf=np.array([3.0, 2.0]))
        assert t.node_perf[0] == pytest.approx(2.0)
        assert t.node_perf[1] == pytest.approx(2.0)

    def test_fastest_node(self):
        t = TaskloopPTT(num_nodes=3)
        assert t.fastest_node() == 0  # no data: fall back
        t.record((3, 7, "strict"), 1.0, node_perf=np.array([1.0, 5.0, 2.0]))
        assert t.fastest_node() == 1

    def test_node_perf_shape_checked(self):
        t = TaskloopPTT(num_nodes=2)
        with pytest.raises(ConfigurationError):
            t.record((2, 3, "strict"), 1.0, node_perf=np.array([1.0]))

    def test_invalidate_drops_entries_keeps_node_perf(self):
        t = TaskloopPTT(num_nodes=2)
        t.record((2, 3, "strict"), 1.0, node_perf=np.array([1.0, 2.0]))
        assert t.generation == 0
        t.invalidate()
        assert t.entries == {}
        assert t.generation == 1
        # the EMA adapts on its own; it seeds the re-exploration's mask
        assert np.array_equal(t.node_perf, np.array([1.0, 2.0]))
        # entries recorded afterwards are fresh, not resurrected
        t.record((2, 3, "strict"), 5.0)
        assert t.mean_time((2, 3, "strict")) == 5.0
        assert t.entries[(2, 3, "strict")].count == 1


class TestPerformanceTraceTable:
    def test_table_created_on_demand(self):
        ptt = PerformanceTraceTable(num_nodes=4)
        assert "a" not in ptt
        t = ptt.table("a")
        assert "a" in ptt
        assert ptt.table("a") is t
        assert len(ptt) == 1
        assert ptt.uids() == ["a"]

    def test_clear(self):
        ptt = PerformanceTraceTable(num_nodes=4)
        ptt.table("a")
        ptt.clear()
        assert len(ptt) == 0

    def test_bad_nodes(self):
        with pytest.raises(ConfigurationError):
            PerformanceTraceTable(0)
