"""Unit tests for taskloop configurations."""

import pytest

from repro.core.config import StealPolicyMode, TaskloopConfig
from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask


def mask(*nodes, width=8):
    return NodeMask.from_indices(list(nodes), width)


class TestTaskloopConfig:
    def test_key_is_hashable_triple(self):
        cfg = TaskloopConfig(16, mask(0, 1), StealPolicyMode.STRICT)
        assert cfg.key == (16, 0b11, "strict")
        assert hash(cfg.key)

    def test_with_policy(self):
        cfg = TaskloopConfig(16, mask(0, 1), StealPolicyMode.STRICT)
        full = cfg.with_policy(StealPolicyMode.FULL)
        assert full.steal_policy is StealPolicyMode.FULL
        assert full.num_threads == 16
        assert cfg.steal_policy is StealPolicyMode.STRICT  # original untouched

    def test_describe(self):
        cfg = TaskloopConfig(8, mask(2), StealPolicyMode.FULL)
        text = cfg.describe()
        assert "threads=8" in text and "full" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskloopConfig(0, mask(0), StealPolicyMode.STRICT)
        with pytest.raises(ConfigurationError):
            TaskloopConfig(4, NodeMask.empty(8), StealPolicyMode.STRICT)


class TestStealPolicyMode:
    def test_values(self):
        assert StealPolicyMode.STRICT.value == "strict"
        assert StealPolicyMode.FULL.value == "full"

    def test_string_enum(self):
        assert StealPolicyMode("full") is StealPolicyMode.FULL
