"""Unit tests for the hierarchical task distribution."""

import pytest

from repro.core.distribution import distribute_chunks
from repro.errors import ConfigurationError
from repro.runtime.taskloop import partition
from tests.conftest import make_work


@pytest.fixture
def chunks(small_ctx):
    work = make_work(small_ctx, num_tasks=16, total_iters=64)
    return partition(work)


class TestMapping:
    def test_contiguous_blocks(self, chunks):
        per_node = distribute_chunks(chunks, [0, 1])
        assert [c.index for c in per_node[0]] == list(range(8))
        assert [c.index for c in per_node[1]] == list(range(8, 16))

    def test_home_node_set(self, chunks):
        distribute_chunks(chunks, [2, 3])
        assert chunks[0].home_node == 2
        assert chunks[-1].home_node == 3

    def test_node_order_matters(self, chunks):
        per_node = distribute_chunks(chunks, [3, 1])
        assert [c.index for c in per_node[3]] == list(range(8))

    def test_uneven_split(self, small_ctx):
        work = make_work(small_ctx, num_tasks=10, total_iters=64)
        per_node = distribute_chunks(partition(work), [0, 1, 2])
        sizes = [len(per_node[n]) for n in (0, 1, 2)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_single_node(self, chunks):
        per_node = distribute_chunks(chunks, [5])
        assert len(per_node[5]) == 16

    def test_deterministic(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        a = distribute_chunks(partition(work), [0, 1])
        b = distribute_chunks(partition(work), [0, 1])
        assert [[c.index for c in a[n]] for n in (0, 1)] == [
            [c.index for c in b[n]] for n in (0, 1)
        ]


class TestStrictness:
    def test_default_strict_fraction(self, chunks):
        from repro.core.distribution import DEFAULT_STRICT_FRACTION

        per_node = distribute_chunks(chunks, [0, 1])
        expected = int(DEFAULT_STRICT_FRACTION * 8)
        for node_chunks in per_node.values():
            strict = [c.strict for c in node_chunks]
            assert strict == [True] * expected + [False] * (8 - expected)

    def test_custom_fraction(self, chunks):
        per_node = distribute_chunks(chunks, [0, 1], strict_fraction=0.5)
        for node_chunks in per_node.values():
            assert sum(c.strict for c in node_chunks) == 4

    def test_zero_fraction_all_stealable(self, chunks):
        per_node = distribute_chunks(chunks, [0, 1], strict_fraction=0.0)
        assert not any(c.strict for nc in per_node.values() for c in nc)

    def test_one_fraction_all_strict(self, chunks):
        per_node = distribute_chunks(chunks, [0, 1], strict_fraction=1.0)
        assert all(c.strict for nc in per_node.values() for c in nc)

    def test_strict_prefix_is_initial_iterations(self, chunks):
        """The strict tasks must be the *first* iterations of each node's
        block (they carry the locality; the tail is the balancing slack)."""
        per_node = distribute_chunks(chunks, [0, 1], strict_fraction=0.5)
        for node_chunks in per_node.values():
            indices = [c.index for c in node_chunks]
            strict_idx = [c.index for c in node_chunks if c.strict]
            assert strict_idx == indices[: len(strict_idx)]


class TestValidation:
    def test_empty_nodes(self, chunks):
        with pytest.raises(ConfigurationError):
            distribute_chunks(chunks, [])

    def test_duplicate_nodes(self, chunks):
        with pytest.raises(ConfigurationError):
            distribute_chunks(chunks, [0, 0])

    def test_bad_fraction(self, chunks):
        with pytest.raises(ConfigurationError):
            distribute_chunks(chunks, [0], strict_fraction=1.5)

    def test_empty_chunks(self):
        with pytest.raises(ConfigurationError):
            distribute_chunks([], [0])
