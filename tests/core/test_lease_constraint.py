"""Lease-constrained moldability: ILAN confined to a NUMA-node subset.

The multi-tenant service grants each job a node lease; these tests pin
down the contract that inside a lease ILAN behaves exactly as it would on
a machine consisting of only the leased nodes — every mask, thread count
and worker core stays inside the lease through the entire exploration
lifecycle.
"""

import numpy as np
import pytest

from repro.core.moldability import MoldabilityController, Phase
from repro.core.node_mask import get_numa_mask, nodes_needed
from repro.core.ptt import TaskloopPTT
from repro.core.scheduler import IlanScheduler
from repro.errors import ConfigurationError
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.topology.affinity import NodeMask
from repro.topology.presets import default_distances
from tests.conftest import make_work


def lease(indices, width=4):
    return NodeMask.from_indices(indices, width)


def ptt_with_perf(num_nodes, perf):
    t = TaskloopPTT(num_nodes=num_nodes)
    t.record((1, 1, "strict"), 1.0, node_perf=np.asarray(perf, dtype=float))
    return t


@pytest.fixture
def small_distances(small):
    return default_distances(small)


# ----------------------------------------------------------------------
# GetNUMAMask under a lease
# ----------------------------------------------------------------------
class TestLeasedNumaMask:
    def test_mask_stays_inside_lease(self, small, small_distances):
        # the globally fastest node (0) is outside the lease and must lose
        ptt = ptt_with_perf(4, [9, 1, 2, 3])
        mask = get_numa_mask(8, ptt, small, small_distances, allowed=lease([2, 3]))
        assert set(mask.indices()) == {2, 3}

    def test_fastest_leased_node_seeds_selection(self, small, small_distances):
        ptt = ptt_with_perf(4, [9, 1, 2, 3])
        mask = get_numa_mask(4, ptt, small, small_distances, allowed=lease([2, 3]))
        assert mask.indices() == [3]  # fastest *allowed*, not node 0

    def test_no_observations_falls_back_to_lowest_leased(self, small, small_distances):
        ptt = TaskloopPTT(num_nodes=4)
        mask = get_numa_mask(4, ptt, small, small_distances, allowed=lease([1, 3]))
        assert mask.indices() == [1]

    def test_full_lease_equals_unleased(self, small, small_distances):
        ptt = ptt_with_perf(4, [1, 2, 9, 3])
        full = lease([0, 1, 2, 3])
        for threads in (1, 4, 8, 16):
            unconstrained = get_numa_mask(threads, ptt, small, small_distances)
            constrained = get_numa_mask(
                threads, ptt, small, small_distances, allowed=full
            )
            assert constrained.bits == unconstrained.bits

    def test_nodes_needed_caps_at_lease(self, small):
        assert nodes_needed(16, small, allowed=lease([2, 3])) == 2
        assert nodes_needed(4, small, allowed=lease([2, 3])) == 1

    def test_wrong_width_lease_rejected(self, small, small_distances):
        ptt = TaskloopPTT(num_nodes=4)
        with pytest.raises(ConfigurationError, match="width"):
            get_numa_mask(4, ptt, small, small_distances,
                          allowed=NodeMask.from_indices([0], 2))

    def test_empty_lease_rejected(self, small, small_distances):
        ptt = TaskloopPTT(num_nodes=4)
        with pytest.raises(ConfigurationError, match="at least one node"):
            get_numa_mask(4, ptt, small, small_distances, allowed=NodeMask(0, 4))


# ----------------------------------------------------------------------
# MoldabilityController under a lease
# ----------------------------------------------------------------------
class TestLeasedController:
    def test_m_max_is_the_leased_core_count(self, small, small_distances):
        ctrl = MoldabilityController(
            topology=small, distances=small_distances, granularity=4,
            allowed_nodes=lease([2, 3]),
        )
        assert ctrl.m_max == 8  # 2 leased nodes x 4 cores

    def test_granularity_validated_against_lease(self, small, small_distances):
        with pytest.raises(ConfigurationError, match="granularity"):
            MoldabilityController(
                topology=small, distances=small_distances, granularity=16,
                allowed_nodes=lease([2, 3]),
            )

    def test_lease_width_and_emptiness_validated(self, small, small_distances):
        with pytest.raises(ConfigurationError, match="width"):
            MoldabilityController(
                topology=small, distances=small_distances, granularity=4,
                allowed_nodes=NodeMask.from_indices([0], 2),
            )
        with pytest.raises(ConfigurationError, match="at least one node"):
            MoldabilityController(
                topology=small, distances=small_distances, granularity=4,
                allowed_nodes=NodeMask(0, 4),
            )


# ----------------------------------------------------------------------
# the full scheduler lifecycle inside a lease
# ----------------------------------------------------------------------
def run_encounters(ctx, sched, work, n):
    ex = TaskloopExecutor(ctx)
    plans = []
    for _ in range(n):
        plan = sched.plan(work, ctx)
        result = ex.run(work, plan)
        sched.record(work, plan, result)
        plans.append(plan)
    return plans


class TestLeasedScheduler:
    def test_every_plan_stays_inside_the_lease(self, small):
        allowed = lease([2, 3])
        leased_cores = {
            c for n in allowed.indices() for c in small.cores_of_node(n)
        }
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler(allowed_nodes=allowed)
        work = make_work(ctx, num_tasks=16, total_iters=64, mem_frac=0.2)
        plans = run_encounters(ctx, sched, work, 14)
        for plan in plans:
            assert plan.node_mask_bits & ~allowed.bits == 0, (
                f"mask 0b{plan.node_mask_bits:b} escapes lease 0b{allowed.bits:b}"
            )
            assert set(plan.worker_cores) <= leased_cores
            assert 1 <= plan.num_threads <= 8
        assert sched.controller(work.uid).phase is Phase.SETTLED

    def test_first_encounter_uses_the_whole_lease(self, small):
        allowed = lease([0, 1])
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler(allowed_nodes=allowed)
        work = make_work(ctx, num_tasks=16, total_iters=64)
        plan = sched.plan(work, ctx)
        assert plan.num_threads == 8  # m_max of the lease, not the machine
        assert plan.node_mask_bits == allowed.bits

    def test_single_node_lease_settles_trivially(self, small):
        allowed = lease([1])
        ctx = RunContext.create(small, seed=0)
        sched = IlanScheduler(allowed_nodes=allowed)
        work = make_work(ctx, num_tasks=16, total_iters=64, mem_frac=0.2)
        plans = run_encounters(ctx, sched, work, 10)
        assert all(p.node_mask_bits == allowed.bits for p in plans)
        assert all(p.num_threads == 4 for p in plans)

    def test_full_machine_lease_matches_unleased_run(self, small):
        work_kwargs = dict(num_tasks=16, total_iters=64, mem_frac=0.2)

        def settled(allowed):
            ctx = RunContext.create(small, seed=0)
            sched = IlanScheduler(allowed_nodes=allowed)
            work = make_work(ctx, **work_kwargs)
            run_encounters(ctx, sched, work, 14)
            ctrl = sched.controller(work.uid)
            assert ctrl.phase is Phase.SETTLED
            cfg = ctrl.settled_config
            return cfg.num_threads, cfg.node_mask.bits, cfg.steal_policy

        assert settled(None) == settled(NodeMask.for_topology(small))

    def test_scheduler_exposes_lease_on_creation(self, small):
        from repro.runtime.schedulers.base import create_scheduler

        allowed = lease([0, 1])
        sched = create_scheduler("ilan", allowed_nodes=allowed)
        assert sched.allowed_nodes is allowed
