"""Integration tests: counters collected by the executor, used by ILAN."""

import pytest

from repro.core.scheduler import IlanScheduler
from repro.memory.access import AccessPattern
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_synthetic


@pytest.fixture
def compute_app():
    """No memory pressure: counters must report headroom."""
    return make_synthetic(
        name="compute", mem_frac=0.05, blocked_fraction=1.0, reuse=0.0,
        gamma=0.0, timesteps=8, num_tasks=16, total_iters=64, region_mib=32,
    )


@pytest.fixture
def memory_app():
    """Bandwidth-saturating: counters must report contention."""
    return make_synthetic(
        name="memory", mem_frac=0.9, blocked_fraction=0.0, reuse=0.0,
        gamma=1.5, timesteps=8, num_tasks=16, total_iters=64, region_mib=64,
    )


class TestExecutorSampling:
    def test_every_taskloop_gets_a_sample(self, small, compute_app):
        res = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(compute_app)
        assert all(r.counters is not None for r in res.taskloops)
        assert all(r.counters.elapsed == pytest.approx(r.elapsed) for r in res.taskloops)

    def test_counters_can_be_disabled(self, small, compute_app):
        rt = OpenMPRuntime(small, scheduler="baseline", seed=0)
        ctx = rt.create_context()
        ctx.counters.enabled = False
        # run via the runtime path but with a custom context is awkward;
        # check the context flag wiring directly instead
        assert ctx.counters.enabled is False

    def test_saturation_separates_workload_classes(self, small, compute_app, memory_app):
        rc = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(compute_app)
        rm = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(memory_app)
        sat_compute = max(r.counters.avg_saturation for r in rc.taskloops)
        sat_memory = min(r.counters.avg_saturation for r in rm.taskloops)
        assert sat_compute < 0.5
        assert sat_memory > 1.0

    def test_bytes_accumulate_for_memory_work(self, small, memory_app):
        res = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(memory_app)
        assert all(r.counters.bytes_total > 0 for r in res.taskloops)

    def test_utilization_bounded(self, small, memory_app):
        res = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(memory_app)
        for r in res.taskloops:
            assert 0.0 < r.counters.utilization <= 1.0 + 1e-9


class TestCounterGuidedIlan:
    def test_compute_bound_skips_exploration(self, small, compute_app):
        sched = IlanScheduler(use_counters=True)
        res = OpenMPRuntime(small, scheduler=sched, seed=0).run_application(compute_app)
        threads = [r.num_threads for r in res.taskloops]
        # warmup + k=1 at full width, then settle immediately: no narrow probes
        assert all(t == small.num_cores for t in threads)

    def test_memory_bound_still_explores(self, small, memory_app):
        sched = IlanScheduler(use_counters=True)
        res = OpenMPRuntime(small, scheduler=sched, seed=0).run_application(memory_app)
        threads = {r.num_threads for r in res.taskloops}
        assert len(threads) > 1, "saturated workload must trigger the search"

    def test_counter_shortcut_not_slower(self, small, compute_app):
        plain = OpenMPRuntime(small, scheduler=IlanScheduler(), seed=0).run_application(compute_app)
        fast = OpenMPRuntime(
            small, scheduler=IlanScheduler(use_counters=True), seed=0
        ).run_application(compute_app)
        assert fast.total_time <= plain.total_time + 1e-9
