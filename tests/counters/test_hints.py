"""Unit tests for counter-driven exploration hints."""

from repro.counters.hints import (
    SATURATION_EXPLORE_THRESHOLD,
    hint_from_counters,
)
from repro.counters.metrics import TaskloopCounters


def sample(avg_sat: float) -> TaskloopCounters:
    return TaskloopCounters(uid="x", elapsed=1.0, sat_time_integral=avg_sat)


def test_no_data_explores():
    hint = hint_from_counters(None)
    assert not hint.skip_search
    assert "no counter data" in hint.reason


def test_headroom_skips_search():
    hint = hint_from_counters(sample(0.3))
    assert hint.skip_search
    assert "headroom" in hint.reason


def test_saturated_explores():
    hint = hint_from_counters(sample(1.8))
    assert not hint.skip_search


def test_threshold_boundary():
    below = hint_from_counters(sample(SATURATION_EXPLORE_THRESHOLD - 0.01))
    above = hint_from_counters(sample(SATURATION_EXPLORE_THRESHOLD + 0.01))
    assert below.skip_search
    assert not above.skip_search
