"""Unit tests for the performance-counter board."""

import numpy as np
import pytest

from repro.counters.metrics import CounterBoard, TaskloopCounters
from repro.errors import SimulationError


class TestCounterBoard:
    def test_disabled_board_is_inert(self):
        b = CounterBoard(enabled=False)
        b.begin("a")
        b.step(1.0, np.array([2.0]), 4, 8)
        b.add_chunk_traffic(100.0, 50.0)
        assert b.finish(1.0) is None
        assert b.last("a") is None

    def test_sampling_lifecycle(self):
        b = CounterBoard()
        b.begin("app.loop")
        b.step(0.5, np.array([1.0, 3.0]), active_cores=4, participating=8)
        b.step(0.5, np.array([0.5, 0.5]), active_cores=8, participating=8)
        b.add_chunk_traffic(1000.0, 400.0)
        sample = b.finish(elapsed=1.0)
        assert sample.uid == "app.loop"
        assert sample.avg_saturation == pytest.approx((2.0 * 0.5 + 0.5 * 0.5) / 1.0)
        assert sample.peak_saturation == 3.0
        assert sample.remote_byte_fraction == pytest.approx(0.4)
        assert sample.busy_time == pytest.approx(4 * 0.5 + 8 * 0.5)
        assert sample.idle_time == pytest.approx(4 * 0.5)
        assert sample.utilization == pytest.approx(6.0 / 8.0)

    def test_history_per_uid(self):
        b = CounterBoard()
        for _ in range(2):
            b.begin("a")
            b.finish(1.0)
        b.begin("b")
        b.finish(2.0)
        assert len(b.history("a")) == 2
        assert b.last("b").elapsed == 2.0
        assert b.uids() == ["a", "b"]

    def test_nested_begin_rejected(self):
        b = CounterBoard()
        b.begin("a")
        with pytest.raises(SimulationError):
            b.begin("b")

    def test_finish_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            CounterBoard().finish(1.0)

    def test_abort_clears(self):
        b = CounterBoard()
        b.begin("a")
        b.abort()
        b.begin("b")  # does not raise
        b.finish(1.0)

    def test_zero_dt_steps_ignored(self):
        b = CounterBoard()
        b.begin("a")
        b.step(0.0, np.array([9.0]), 1, 1)
        s = b.finish(1.0)
        assert s.peak_saturation == 0.0


class TestTaskloopCounters:
    def test_safe_ratios_on_empty(self):
        c = TaskloopCounters(uid="x")
        assert c.avg_saturation == 0.0
        assert c.remote_byte_fraction == 0.0
        assert c.utilization == 0.0
