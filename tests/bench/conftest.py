"""Fixtures for the benchmark-harness tests: canned BENCH documents."""

from __future__ import annotations

import copy

import pytest

from repro.bench.schema import CAMPAIGNS, SCHEMA_VERSION, environment_fingerprint


def engine_entry(events: int = 4_000, wall_s: float = 0.5, repeats: int = 3) -> dict:
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s,
        "repeats": repeats,
    }


def make_document(
    *,
    mode: str = "full",
    seed: int = 0,
    speedup: float = 4.0,
    environment: dict | None = None,
) -> dict:
    """A small, fully valid BENCH document (all campaigns share shape)."""
    env = environment or environment_fingerprint()
    repeats = 3 if mode == "full" else 1
    eps = {}
    for campaign in CAMPAIGNS:
        reference = engine_entry(repeats=repeats)
        incremental = engine_entry(
            events=reference["events"],
            wall_s=reference["wall_s"] / speedup,
            repeats=repeats,
        )
        eps[campaign] = {
            "environment": copy.deepcopy(env),
            "reference": reference,
            "incremental": incremental,
            "speedup": incremental["events_per_sec"]
            / reference["events_per_sec"],
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "seed": seed,
        "metrics": {
            "events_per_sec": eps,
            "campaign_wall_s": {
                "environment": copy.deepcopy(env),
                "cold_s": 2.0,
                "warm_s": 0.25,
                "runs": 3,
            },
            "service_latency_s": {
                "environment": copy.deepcopy(env),
                "jobs": 6,
                "p50": 0.15,
                "p99": 0.21,
                "throughput_jps": 12.0,
            },
        },
    }


@pytest.fixture
def document() -> dict:
    return make_document()
