"""Schema tests: valid documents pass, every mutation fails with a path.

Also the golden checks on the committed ``BENCH_6.json``: it validates
against the current schema, its warm-cache campaign wall time does not
exceed the cold one, and the large-campaign speedup clears the 3x bar
this PR claims.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.schema import CAMPAIGNS, environment_fingerprint, validate
from repro.errors import BenchError
from tests.bench.conftest import make_document

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "BENCH_6.json"


def test_valid_document_passes(document):
    validate(document)  # must not raise


def test_quick_mode_document_passes():
    validate(make_document(mode="quick"))


def test_environment_fingerprint_is_schema_valid():
    env = environment_fingerprint()
    for key in ("python", "numpy", "platform", "machine"):
        assert isinstance(env[key], str) and env[key]
    assert isinstance(env["cpu_count"], int) and env["cpu_count"] >= 1


@pytest.mark.parametrize(
    "mutate, path_fragment",
    [
        (lambda d: d.pop("schema_version"), "$.schema_version"),
        (lambda d: d.update(schema_version=99), "$.schema_version"),
        (lambda d: d.update(schema_version=True), "$.schema_version"),
        (lambda d: d.update(mode="fastest"), "$.mode"),
        (lambda d: d.pop("seed"), "$.seed"),
        (lambda d: d.update(seed="zero"), "$.seed"),
        (lambda d: d.pop("metrics"), "$.metrics"),
        (
            lambda d: d["metrics"].pop("events_per_sec"),
            "$.metrics.events_per_sec",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"].pop("large"),
            "$.metrics.events_per_sec.large",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["small"].pop("environment"),
            "$.metrics.events_per_sec.small.environment",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["small"]["environment"].pop(
                "numpy"
            ),
            "$.metrics.events_per_sec.small.environment.numpy",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["medium"].pop("incremental"),
            "$.metrics.events_per_sec.medium.incremental",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["medium"]["reference"].update(
                events=0
            ),
            "$.metrics.events_per_sec.medium.reference.events",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["medium"]["reference"].update(
                wall_s=-1.0
            ),
            "$.metrics.events_per_sec.medium.reference.wall_s",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["medium"]["incremental"].update(
                repeats=0
            ),
            "$.metrics.events_per_sec.medium.incremental.repeats",
        ),
        (
            lambda d: d["metrics"]["events_per_sec"]["large"].update(speedup=-0.5),
            "$.metrics.events_per_sec.large.speedup",
        ),
        (
            lambda d: d["metrics"]["campaign_wall_s"].pop("warm_s"),
            "$.metrics.campaign_wall_s.warm_s",
        ),
        (
            lambda d: d["metrics"]["campaign_wall_s"].update(runs=0),
            "$.metrics.campaign_wall_s.runs",
        ),
        (
            lambda d: d["metrics"]["service_latency_s"].update(jobs=0),
            "$.metrics.service_latency_s.jobs",
        ),
        (
            lambda d: d["metrics"]["service_latency_s"].pop("p99"),
            "$.metrics.service_latency_s.p99",
        ),
        (
            lambda d: d["metrics"]["service_latency_s"].update(p50="fast"),
            "$.metrics.service_latency_s.p50",
        ),
    ],
)
def test_mutated_document_fails_with_path(document, mutate, path_fragment):
    mutate(document)
    with pytest.raises(BenchError) as excinfo:
        validate(document)
    assert path_fragment in str(excinfo.value)


def test_non_dict_document_rejected():
    with pytest.raises(BenchError, match="JSON object"):
        validate([1, 2, 3])


# ----------------------------------------------------------------------
# golden: the committed BENCH_6.json
# ----------------------------------------------------------------------
def test_committed_document_validates():
    doc = json.loads(GOLDEN.read_text())
    validate(doc)
    assert doc["mode"] == "full"


def test_committed_warm_cache_not_slower_than_cold():
    doc = json.loads(GOLDEN.read_text())
    wall = doc["metrics"]["campaign_wall_s"]
    assert wall["warm_s"] <= wall["cold_s"]


def test_committed_large_speedup_clears_three_x():
    doc = json.loads(GOLDEN.read_text())
    eps = doc["metrics"]["events_per_sec"]
    assert eps["large"]["speedup"] >= 3.0
    # speedup is derived, not free-floating: it must match the recorded
    # per-engine throughputs
    for campaign in CAMPAIGNS:
        entry = eps[campaign]
        derived = (
            entry["incremental"]["events_per_sec"]
            / entry["reference"]["events_per_sec"]
        )
        assert entry["speedup"] == pytest.approx(derived, rel=1e-9)
