"""Comparison-gating tests: what ``--compare`` gates, and when.

The policy under test (see :mod:`repro.bench.compare`): absolute
events/sec is gated only between documents from the same environment
*and* the same mode; across machines or modes only the per-campaign
incremental-over-reference speedup is gated, because that ratio is
measured back-to-back in one process and survives machine changes.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_documents, load_document
from repro.errors import BenchError
from tests.bench.conftest import make_document


def _scale_engine(entry: dict, factor: float) -> None:
    entry["wall_s"] /= factor
    entry["events_per_sec"] = entry["events"] / entry["wall_s"]


def _set_campaign_speedup(doc: dict, campaign: str, factor: float) -> None:
    """Slow/speed the incremental engine only, moving the speedup ratio."""
    entry = doc["metrics"]["events_per_sec"][campaign]
    _scale_engine(entry["incremental"], factor)
    entry["speedup"] = (
        entry["incremental"]["events_per_sec"]
        / entry["reference"]["events_per_sec"]
    )


def test_identical_documents_pass():
    report = compare_documents(make_document(), make_document())
    assert report.absolute_comparable
    assert report.ok and not report.regressions
    # same env + mode gates absolutes (2 engines x 3 campaigns) + 3 speedups
    assert len(report.checks) == 9
    assert report.lines()[-1].startswith("PASS")


def test_small_noise_within_budget_passes():
    current = make_document()
    for campaign in ("small", "medium", "large"):
        for engine in ("reference", "incremental"):
            _scale_engine(
                current["metrics"]["events_per_sec"][campaign][engine], 0.9
            )
    report = compare_documents(make_document(), current, max_regression=0.25)
    assert report.ok  # -10% absolute, speedup unchanged


def test_absolute_regression_fails_same_environment():
    current = make_document()
    _scale_engine(
        current["metrics"]["events_per_sec"]["large"]["incremental"], 0.5
    )
    current["metrics"]["events_per_sec"]["large"]["speedup"] *= 0.5
    report = compare_documents(make_document(), current, max_regression=0.25)
    assert not report.ok
    metrics = {c.metric for c in report.regressions}
    assert "events_per_sec.large.incremental" in metrics
    assert "events_per_sec.large.speedup" in metrics
    assert report.lines()[-1].startswith("FAIL")


def test_speedup_regression_fails_even_across_environments():
    other_env = {
        "python": "3.11.0",
        "numpy": "1.26.0",
        "platform": "darwin",
        "machine": "arm64",
        "cpu_count": 10,
    }
    current = make_document(environment=other_env)
    _set_campaign_speedup(current, "large", 0.5)
    report = compare_documents(make_document(), current)
    assert not report.absolute_comparable
    assert [c.metric for c in report.regressions] == [
        "events_per_sec.large.speedup"
    ]


def test_absolute_drop_ignored_across_environments():
    """CI machine 3x slower than the baseline machine: fine, as long as
    the incremental engine keeps its edge."""
    other_env = {
        "python": "3.11.0",
        "numpy": "1.26.0",
        "platform": "darwin",
        "machine": "arm64",
        "cpu_count": 10,
    }
    current = make_document(environment=other_env)
    for campaign in ("small", "medium", "large"):
        for engine in ("reference", "incremental"):
            _scale_engine(
                current["metrics"]["events_per_sec"][campaign][engine], 1 / 3
            )
    report = compare_documents(make_document(), current)
    assert not report.absolute_comparable
    assert report.ok
    assert len(report.checks) == 3  # speedups only


def test_mode_mismatch_gates_ratios_only():
    report = compare_documents(make_document(mode="full"), make_document(mode="quick"))
    assert not report.absolute_comparable
    assert len(report.checks) == 3
    assert any("mode" in note for note in report.notes)


def test_speedup_improvement_never_fails():
    current = make_document()
    _set_campaign_speedup(current, "large", 2.0)
    assert compare_documents(make_document(), current).ok


def test_invalid_budget_rejected():
    with pytest.raises(BenchError, match="max_regression"):
        compare_documents(make_document(), make_document(), max_regression=1.5)


def test_invalid_document_rejected():
    broken = make_document()
    del broken["metrics"]["events_per_sec"]["large"]
    with pytest.raises(BenchError):
        compare_documents(make_document(), broken)
    with pytest.raises(BenchError):
        compare_documents(broken, make_document())


def test_check_describes_change_direction():
    report = compare_documents(make_document(), make_document())
    for line in report.lines()[1:-1]:
        assert "ok" in line


# ----------------------------------------------------------------------
# load_document
# ----------------------------------------------------------------------
def test_load_document_roundtrip(tmp_path, document):
    p = tmp_path / "BENCH_x.json"
    p.write_text(json.dumps(document))
    assert load_document(p) == document


def test_load_document_missing_file(tmp_path):
    with pytest.raises(BenchError, match="cannot read"):
        load_document(tmp_path / "absent.json")


def test_load_document_bad_json(tmp_path):
    p = tmp_path / "BENCH_x.json"
    p.write_text("{not json")
    with pytest.raises(BenchError, match="not valid JSON"):
        load_document(p)


def test_load_document_invalid_schema(tmp_path):
    p = tmp_path / "BENCH_x.json"
    p.write_text(json.dumps({"schema_version": 1}))
    with pytest.raises(BenchError, match="invalid at"):
        load_document(p)
