"""Exit-code contract of ``scripts/bench.py``.

0 = measured (and, with ``--compare``, within budget); 1 = regression;
2 = malformed document or bad invocation.  The measurement itself is
monkeypatched — these tests pin the CLI plumbing, not the campaigns.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.errors import BenchError
from tests.bench.conftest import make_document

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bench_cli():
    spec = importlib.util.spec_from_file_location(
        "bench_cli_under_test", REPO_ROOT / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


@pytest.fixture
def measured(bench_cli, monkeypatch):
    """Replace the real campaigns with an instant canned measurement."""
    doc = make_document()

    def fake_run_benchmarks(*, mode, seed, log=None):
        doc["mode"] = mode
        doc["seed"] = seed
        return doc

    monkeypatch.setattr(bench_cli, "run_benchmarks", fake_run_benchmarks)
    return doc


def test_plain_run_prints_document(bench_cli, measured, capsys):
    assert bench_cli.main([]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["mode"] == "full"


def test_quick_flag_and_seed_reach_harness(bench_cli, measured, capsys):
    assert bench_cli.main(["--quick", "--seed", "7"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["mode"] == "quick" and printed["seed"] == 7


def test_out_writes_validated_json(bench_cli, measured, tmp_path, capsys):
    out = tmp_path / "BENCH_new.json"
    assert bench_cli.main(["--out", str(out)]) == 0
    on_disk = json.loads(out.read_text())
    assert on_disk == measured
    # --out replaces stdout dumping with a one-line confirmation
    assert str(out) in capsys.readouterr().out


def test_compare_within_budget_exits_zero(bench_cli, measured, tmp_path, capsys):
    prev = tmp_path / "BENCH_prev.json"
    prev.write_text(json.dumps(make_document()))
    assert bench_cli.main(["--compare", str(prev)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_compare_regression_exits_one(bench_cli, measured, tmp_path, capsys):
    slower = make_document(speedup=1.1)  # baseline claims 4x; we measure 1.1x
    prev = tmp_path / "BENCH_prev.json"
    prev.write_text(json.dumps(make_document()))
    measured["metrics"] = slower["metrics"]
    assert bench_cli.main(["--compare", str(prev)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_compare_missing_baseline_exits_two(bench_cli, measured, tmp_path, capsys):
    assert bench_cli.main(["--compare", str(tmp_path / "absent.json")]) == 2
    assert "bench:" in capsys.readouterr().err


def test_compare_malformed_baseline_exits_two(bench_cli, measured, tmp_path):
    prev = tmp_path / "BENCH_prev.json"
    prev.write_text("{}")
    assert bench_cli.main(["--compare", str(prev)]) == 2


def test_measurement_failure_exits_two(bench_cli, monkeypatch, capsys):
    def broken(**kwargs):
        raise BenchError("engines diverged")

    monkeypatch.setattr(bench_cli, "run_benchmarks", broken)
    assert bench_cli.main([]) == 2
    assert "engines diverged" in capsys.readouterr().err


def test_bad_max_regression_exits_two(bench_cli, measured, tmp_path):
    prev = tmp_path / "BENCH_prev.json"
    prev.write_text(json.dumps(make_document()))
    assert (
        bench_cli.main(["--compare", str(prev), "--max-regression", "1.5"]) == 2
    )
