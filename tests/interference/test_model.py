"""Unit tests for the interference (slowdown) model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.interference.model import InterferenceModel
from repro.memory.bandwidth import BandwidthModel
from repro.sim.progress import CoreStates
from repro.topology.presets import default_distances, tiny_two_node


@pytest.fixture
def machine():
    topo = tiny_two_node()  # 4 cores, 2 nodes
    dist = default_distances(topo)
    bw = BandwidthModel(node_bandwidth=np.array([10.0, 10.0]), core_bandwidth=8.0)
    return topo, dist, InterferenceModel(topo, dist, bw)


def start(states, core, mem_frac, weights, gamma=0.0):
    states.start(
        core, body=1.0, overhead=0.0, mem_frac=mem_frac, gamma=gamma,
        weights=np.asarray(weights, dtype=float), payload=None,
    )


class TestSlowdowns:
    def test_idle_machine_all_ones(self, machine):
        topo, _, model = machine
        states = CoreStates(topo.num_cores, topo.num_nodes)
        assert np.all(model.slowdowns(states) == 1.0)

    def test_pure_compute_no_slowdown(self, machine):
        topo, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=0.0, weights=[0, 0])
        assert model.slowdowns(states)[0] == 1.0

    def test_local_uncontended_memory_no_slowdown(self, machine):
        topo, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=0.5, weights=[1.0, 0.0])  # core 0 is on node 0
        assert model.slowdowns(states)[0] == pytest.approx(1.0)

    def test_remote_memory_latency_penalty(self, machine):
        topo, dist, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=1.0, weights=[0.0, 1.0])  # all bytes remote
        lf = dist.latency_factor(0, 1)
        assert model.slowdowns(states)[0] == pytest.approx(lf)

    def test_contention_kicks_in_at_saturation(self, machine):
        topo, _, model = machine
        states = CoreStates(4, 2)
        # both node-0 cores hammer node 0: demand 2 * 8 = 16 > 10
        start(states, 0, mem_frac=1.0, weights=[1.0, 0.0])
        start(states, 1, mem_frac=1.0, weights=[1.0, 0.0])
        s = model.slowdowns(states)
        assert s[0] == pytest.approx(1.6)  # D/B with gamma=0
        assert s[1] == pytest.approx(1.6)

    def test_gamma_superlinear(self, machine):
        topo, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=1.0, weights=[1.0, 0.0], gamma=1.0)
        start(states, 1, mem_frac=1.0, weights=[1.0, 0.0], gamma=1.0)
        assert model.slowdowns(states)[0] == pytest.approx(1.6**2)

    def test_mem_frac_blends(self, machine):
        topo, dist, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=0.5, weights=[0.0, 1.0])
        expected = 0.5 + 0.5 * dist.latency_factor(0, 1)
        assert model.slowdowns(states)[0] == pytest.approx(expected)

    def test_victim_on_saturated_node_also_slowed(self, machine):
        """A task whose data lives on a node saturated by others suffers."""
        topo, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=1.0, weights=[1.0, 0.0])
        start(states, 1, mem_frac=1.0, weights=[1.0, 0.0])
        # core 2 (node 1) accesses node 0 remotely
        start(states, 2, mem_frac=1.0, weights=[1.0, 0.0])
        s = model.slowdowns(states)
        assert s[2] > 1.6  # latency factor times contention

    def test_mismatched_states_rejected(self, machine):
        _, _, model = machine
        with pytest.raises(SimulationError):
            model.slowdowns(CoreStates(2, 2))


class TestDemand:
    def test_node_demand_aggregates(self, machine):
        _, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=0.5, weights=[1.0, 0.0])
        start(states, 2, mem_frac=1.0, weights=[0.5, 0.5])
        d = model.node_demand(states)
        assert d[0] == pytest.approx(8.0 * (0.5 + 0.5))
        assert d[1] == pytest.approx(8.0 * 0.5)

    def test_saturation_ratio(self, machine):
        _, _, model = machine
        states = CoreStates(4, 2)
        start(states, 0, mem_frac=1.0, weights=[1.0, 0.0])
        sat = model.saturation(states)
        assert sat[0] == pytest.approx(0.8)
        assert sat[1] == 0.0


class TestConstruction:
    def test_mismatched_distances_rejected(self):
        topo = tiny_two_node()
        from repro.topology.presets import dual_socket_small

        wrong_dist = default_distances(dual_socket_small())
        bw = BandwidthModel(node_bandwidth=np.array([1.0, 1.0]))
        with pytest.raises(SimulationError):
            InterferenceModel(topo, wrong_dist, bw)

    def test_mismatched_bandwidth_rejected(self):
        topo = tiny_two_node()
        bw = BandwidthModel(node_bandwidth=np.array([1.0, 1.0, 1.0]))
        with pytest.raises(SimulationError):
            InterferenceModel(topo, default_distances(topo), bw)
