"""Unit tests for the external-noise process."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.interference.noise import NoiseParams, NoiseProcess
from repro.sim.engine import Simulator
from repro.sim.progress import CoreStates
from repro.sim.rng import stream


def make_proc(params):
    sim = Simulator()
    states = CoreStates(8, 2)
    proc = NoiseProcess(sim, states, params, stream(3, "noise"))
    return sim, states, proc


class TestParams:
    def test_disabled_by_default(self):
        assert not NoiseParams().enabled

    def test_validation(self):
        with pytest.raises(SimulationError):
            NoiseParams(mean_interval=-1.0)
        with pytest.raises(SimulationError):
            NoiseParams(mean_duration=0.0)
        with pytest.raises(SimulationError):
            NoiseParams(slow_factor=1.0)
        with pytest.raises(SimulationError):
            NoiseParams(cores_fraction=0.0)


class TestProcess:
    def test_disabled_schedules_nothing(self):
        sim, _, proc = make_proc(NoiseParams())
        proc.start()
        assert sim.events.is_empty()

    def test_enabled_schedules_onset(self):
        sim, _, proc = make_proc(NoiseParams(mean_interval=0.1))
        proc.start()
        assert len(sim.events) == 1

    def test_onset_slows_and_offset_restores(self):
        params = NoiseParams(
            mean_interval=0.01, mean_duration=0.01, slow_factor=0.5, cores_fraction=0.25
        )
        sim, states, proc = make_proc(params)
        proc.start()
        # drive the event loop until one episode has begun
        for _ in range(100):
            nxt = sim.events.next_time()
            sim.clock.advance_to(nxt)
            sim.run_due_events()
            if proc.episodes >= 1 and np.any(states.speed < 1.0):
                break
        slowed = np.flatnonzero(states.speed < 1.0)
        assert 1 <= slowed.size <= 2  # 25% of 8 cores
        assert np.all(states.speed[slowed] == pytest.approx(0.5))
        # run further until that episode ends
        for _ in range(200):
            nxt = sim.events.next_time()
            sim.clock.advance_to(nxt)
            sim.run_due_events()
            if np.all(states.speed == 1.0):
                break
        assert np.all(states.speed == pytest.approx(1.0))

    def test_deterministic_given_seed(self):
        params = NoiseParams(mean_interval=0.02)
        times = []
        for _ in range(2):
            sim, _, proc = make_proc(params)
            proc.start()
            times.append(sim.events.next_time())
        assert times[0] == times[1]

    def test_factors_copy(self):
        sim, _, proc = make_proc(NoiseParams())
        f = proc.factors
        f[0] = 99.0
        assert proc.factors[0] == 1.0
