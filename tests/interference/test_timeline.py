"""Unit tests for the seeded dynamic-asymmetry timeline."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.interference.timeline import (
    ASYMMETRY_PRESETS,
    AsymmetrySpec,
    AsymmetryTimeline,
)
from repro.sim.engine import Simulator
from repro.sim.progress import CoreStates
from repro.sim.rng import stream


def make_timeline(spec, *, seed=3, num_cores=8, num_nodes=2):
    sim = Simulator()
    states = CoreStates(num_cores, num_nodes)
    node_of_core = np.repeat(np.arange(num_nodes), num_cores // num_nodes)
    tl = AsymmetryTimeline(sim, states, spec, stream(seed, "asym"), node_of_core)
    return sim, states, tl


def drive(sim, steps):
    """Run up to ``steps`` events of the simulator's queue."""
    for _ in range(steps):
        if sim.events.is_empty():
            return
        sim.clock.advance_to(sim.events.next_time())
        sim.run_due_events()


class TestSpec:
    def test_disabled_by_default(self):
        spec = AsymmetrySpec()
        assert not spec.enabled
        assert spec.describe() == "none"

    def test_enabled_when_any_interval_set(self):
        assert AsymmetrySpec(dvfs_interval=0.5).enabled
        assert AsymmetrySpec(offline_interval=0.5).enabled

    def test_validation(self):
        with pytest.raises(SimulationError):
            AsymmetrySpec(dvfs_interval=-1.0)
        with pytest.raises(SimulationError):
            AsymmetrySpec(dvfs_low=0.9, dvfs_high=0.5)
        with pytest.raises(SimulationError):
            AsymmetrySpec(throttle_floor=1.5)
        with pytest.raises(SimulationError):
            AsymmetrySpec(throttle_steps=0)
        with pytest.raises(SimulationError):
            AsymmetrySpec(cotenant_fraction=0.0)
        with pytest.raises(SimulationError):
            AsymmetrySpec(max_offline_fraction=1.0)
        with pytest.raises(SimulationError):
            AsymmetrySpec(dvfs_max_nodes=0)

    def test_describe_lists_non_defaults_canonically(self):
        spec = AsymmetrySpec(dvfs_interval=0.25, offline_interval=0.5)
        assert spec.describe() == "dvfs_interval=0.25,offline_interval=0.5"

    def test_describe_stable_across_parse_spellings(self):
        a = AsymmetrySpec.parse("dvfs_interval=0.200,offline_interval=0.5")
        b = AsymmetrySpec.parse("offline_interval=0.5,dvfs_interval=0.2")
        assert a.describe() == b.describe()

    def test_parse_none_and_empty(self):
        assert AsymmetrySpec.parse("none") == AsymmetrySpec()
        assert AsymmetrySpec.parse("") == AsymmetrySpec()
        assert AsymmetrySpec.parse("  ") == AsymmetrySpec()

    def test_parse_preset(self):
        assert AsymmetrySpec.parse("dvfs") == ASYMMETRY_PRESETS["dvfs"]

    def test_parse_preset_with_overrides(self):
        spec = AsymmetrySpec.parse("dvfs:dvfs_low=0.2,dvfs_duration=1.5")
        assert spec.dvfs_interval == ASYMMETRY_PRESETS["dvfs"].dvfs_interval
        assert spec.dvfs_low == 0.2
        assert spec.dvfs_duration == 1.5

    def test_parse_preset_composition(self):
        spec = AsymmetrySpec.parse("dvfs+offline")
        assert spec.dvfs_interval is not None
        assert spec.offline_interval is not None

    def test_parse_bare_overrides(self):
        spec = AsymmetrySpec.parse("cotenant_interval=0.1,cotenant_factor=0.5")
        assert spec.cotenant_interval == 0.1
        assert spec.cotenant_factor == 0.5

    def test_parse_none_value_disables_field(self):
        spec = AsymmetrySpec.parse("dvfs:dvfs_interval=none")
        assert spec.dvfs_interval is None
        assert not spec.enabled

    def test_parse_throttle_steps_is_int(self):
        spec = AsymmetrySpec.parse("throttle:throttle_steps=8")
        assert spec.throttle_steps == 8
        assert isinstance(spec.throttle_steps, int)

    def test_parse_errors(self):
        with pytest.raises(SimulationError, match="unknown asymmetry preset"):
            AsymmetrySpec.parse("nosuch")
        with pytest.raises(SimulationError, match="bad asymmetry override"):
            AsymmetrySpec.parse("dvfs:bogus_field=1")
        with pytest.raises(SimulationError, match="bad value"):
            AsymmetrySpec.parse("dvfs_interval=abc")

    def test_every_preset_is_valid_and_enabled(self):
        for name, spec in ASYMMETRY_PRESETS.items():
            assert spec.enabled, name
            assert spec.describe() != "none"
            # round trip: the preset name parses to the preset spec
            assert AsymmetrySpec.parse(name) == spec


class TestTimeline:
    def test_disabled_schedules_nothing(self):
        sim, _, tl = make_timeline(AsymmetrySpec())
        tl.start()
        assert sim.events.is_empty()

    def test_enabled_mechanisms_each_arm_one_onset(self):
        sim, _, tl = make_timeline(
            AsymmetrySpec(dvfs_interval=0.1, offline_interval=0.1)
        )
        tl.start()
        assert len(sim.events) == 2

    def test_dvfs_slows_one_node_then_reverts(self):
        spec = AsymmetrySpec(dvfs_interval=5.0, dvfs_duration=0.01)
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 1)  # the first onset
        assert tl.dvfs_episodes == 1
        slowed = np.flatnonzero(states.speed < 1.0)
        assert slowed.size == 4  # one node of the 8-core/2-node machine
        node = tl.node_of_core[slowed[0]]
        assert np.all(tl.node_of_core[slowed] == node)
        f = states.speed[slowed[0]]
        assert spec.dvfs_low <= f <= spec.dvfs_high
        # drive until the offset restores nominal speed
        for _ in range(50):
            drive(sim, 1)
            if np.all(states.speed == 1.0):
                break
        assert np.all(states.speed == pytest.approx(1.0))

    def test_dvfs_is_one_pstate_per_node_never_stacked(self):
        # Onsets fire far faster than the long step reverts; a node that is
        # already stepped skips the new onset instead of compounding factors.
        spec = AsymmetrySpec(dvfs_interval=1e-3, dvfs_duration=100.0,
                             dvfs_low=0.15, dvfs_high=0.2)
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 50)
        assert tl.dvfs_skipped >= 1
        # absolute P-state assignment: speeds never fall below a single draw
        assert float(states.speed.min()) >= spec.dvfs_low
        assert tl.dvfs_episodes <= tl.num_nodes

    def test_dvfs_max_nodes_caps_concurrent_steps(self):
        spec = AsymmetrySpec(dvfs_interval=1e-3, dvfs_duration=100.0,
                             dvfs_max_nodes=1)
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 50)
        assert tl.dvfs_episodes == 1
        assert tl.dvfs_skipped >= 1
        assert np.flatnonzero(states.speed < 1.0).size == 4  # one node

    def test_dvfs_max_nodes_parses_as_int(self):
        spec = AsymmetrySpec.parse("dvfs:dvfs_max_nodes=2")
        assert spec.dvfs_max_nodes == 2
        assert isinstance(spec.dvfs_max_nodes, int)

    def test_throttle_ramp_ends_at_exactly_one(self):
        spec = AsymmetrySpec(
            throttle_interval=100.0, throttle_steps=3,
            throttle_step_time=0.01, throttle_hold=0.05,
        )
        sim, states, tl = make_timeline(spec)
        tl.start()
        floor_seen = 1.0
        for _ in range(40):
            drive(sim, 1)
            floor_seen = min(floor_seen, float(states.speed.min()))
            if tl.throttle_episodes >= 1 and not tl._throttle_active:
                break
        assert tl.throttle_episodes == 1
        assert floor_seen == pytest.approx(spec.throttle_floor)
        # absolute assignment: the ramp ends at exactly 1.0, no drift
        assert np.all(tl._throttle == 1.0)

    def test_throttle_one_episode_at_a_time(self):
        spec = AsymmetrySpec(
            throttle_interval=1e-4, throttle_steps=4,
            throttle_step_time=1.0, throttle_hold=1.0,
        )
        sim, _, tl = make_timeline(spec)
        tl.start()
        # many onsets fire while the first slow ramp is still in flight;
        # all of them must coalesce into the one active episode
        drive(sim, 30)
        assert tl.throttle_episodes == 1

    def test_cotenant_slows_fraction_then_reverts(self):
        spec = AsymmetrySpec(
            cotenant_interval=100.0, cotenant_factor=0.5,
            cotenant_fraction=0.25, cotenant_duration=0.01,
        )
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 1)
        slowed = np.flatnonzero(states.speed < 1.0)
        assert slowed.size == 2  # 25% of 8 cores
        assert np.all(states.speed[slowed] == pytest.approx(0.5))
        for _ in range(20):
            drive(sim, 1)
            if np.all(states.speed == 1.0):
                break
        assert np.all(states.speed == pytest.approx(1.0))

    def test_offline_respects_cap_and_recovers(self):
        spec = AsymmetrySpec(
            offline_interval=0.01, offline_duration=0.5,
            max_offline_fraction=0.25,
        )
        sim, states, tl = make_timeline(spec)
        tl.start()
        max_seen = 0
        for _ in range(100):
            drive(sim, 1)
            max_seen = max(max_seen, len(tl.offline_cores))
        assert tl.offline_episodes >= 1
        assert max_seen <= 2  # floor(0.25 * 8)
        assert tl.offline_skipped >= 1  # the cap actually bit
        # every offline event schedules its own online event, so completed
        # recoveries keep pace with onsets (concurrent offline <= cap)
        recoveries = tl.offline_episodes - len(tl.offline_cores)
        assert recoveries >= 1
        assert len(tl.offline_cores) <= 2

    def test_offline_flows_through_set_online(self):
        spec = AsymmetrySpec(offline_interval=1.0, offline_duration=10.0)
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 1)
        assert tl.offline_episodes == 1
        off = tl.offline_cores
        assert len(off) == 1
        assert states.any_offline
        assert not states.online[off[0]]
        assert states.speed[off[0]] == 0.0

    def test_mechanisms_compose_in_one_layer(self):
        spec = AsymmetrySpec(dvfs_interval=1e-3, cotenant_interval=1e-3)
        sim, states, tl = make_timeline(spec)
        tl.start()
        drive(sim, 4)
        expected = tl._dvfs * tl._throttle * tl._cotenant
        assert np.array_equal(tl.factors, expected)
        assert np.allclose(states.speed, expected)

    def test_deterministic_given_seed(self):
        spec = ASYMMETRY_PRESETS["harsh"]
        speeds = []
        for _ in range(2):
            sim, states, tl = make_timeline(spec, seed=7)
            tl.start()
            drive(sim, 60)
            speeds.append((sim.now, states.speed.copy(), states.online.copy()))
        assert speeds[0][0] == speeds[1][0]
        assert np.array_equal(speeds[0][1], speeds[1][1])
        assert np.array_equal(speeds[0][2], speeds[1][2])

    def test_different_seed_different_timeline(self):
        spec = AsymmetrySpec(dvfs_interval=0.2)
        sim_a, _, tl_a = make_timeline(spec, seed=1)
        sim_b, _, tl_b = make_timeline(spec, seed=2)
        tl_a.start()
        tl_b.start()
        assert sim_a.events.next_time() != sim_b.events.next_time()

    def test_node_of_core_validated(self):
        sim = Simulator()
        states = CoreStates(8, 2)
        with pytest.raises(SimulationError):
            AsymmetryTimeline(
                sim, states, AsymmetrySpec(), stream(0, "asym"), np.zeros(3, dtype=int)
            )
