"""Unit and integration tests for the energy model and energy objectives."""

import numpy as np
import pytest

from repro.core.scheduler import IlanScheduler
from repro.counters.metrics import TaskloopCounters
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import TaskloopResult
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_synthetic


def result(elapsed=1.0, threads=4, mask=0b11, counters=None):
    return TaskloopResult(
        uid="a", name="a", elapsed=elapsed, num_threads=threads,
        node_mask_bits=mask, steal_policy="strict", overhead=OverheadLedger(),
        node_perf=np.array([1.0, 1.0]), node_busy=np.array([1.0, 1.0]),
        tasks_executed=8, steals_local=0, steals_remote=0, counters=counters,
    )


class TestEnergyModel:
    def test_counter_based_energy(self):
        m = EnergyModel(core_active_watts=2.0, core_idle_watts=1.0,
                        uncore_watts_per_node=5.0, dram_joules_per_byte=1e-9)
        c = TaskloopCounters(uid="a", elapsed=1.0, busy_time=3.0, idle_time=1.0,
                             bytes_total=1e9)
        e = m.taskloop_energy(result(elapsed=1.0, mask=0b11, counters=c))
        # cores: 2*3 + 1*1 = 7; uncore: 5*2 nodes*1s = 10; dram: 1
        assert e == pytest.approx(7.0 + 10.0 + 1.0)

    def test_fallback_without_counters(self):
        m = EnergyModel(core_active_watts=2.0, uncore_watts_per_node=0.0)
        e = m.taskloop_energy(result(elapsed=2.0, threads=4, mask=0b01))
        assert e == pytest.approx(2.0 * 4 * 2.0)

    def test_edp(self):
        m = EnergyModel(core_active_watts=1.0, uncore_watts_per_node=0.0)
        r = result(elapsed=2.0, threads=1, mask=0b01)
        assert m.taskloop_edp(r) == pytest.approx(m.taskloop_energy(r) * 2.0)

    def test_run_energy_sums(self, small):
        app = make_synthetic(timesteps=3, num_tasks=16, total_iters=64, region_mib=32)
        res = OpenMPRuntime(small, scheduler="baseline", seed=0).run_application(app)
        m = EnergyModel()
        total = m.run_energy(res)
        assert total == pytest.approx(sum(m.taskloop_energy(r) for r in res.taskloops))
        assert total > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(core_active_watts=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(core_active_watts=1.0, core_idle_watts=2.0)


class TestEnergyObjective:
    def test_objective_validation(self):
        with pytest.raises(ConfigurationError):
            IlanScheduler(objective="power")

    def test_energy_objective_builds_default_model(self):
        sched = IlanScheduler(objective="energy")
        assert sched.energy_model is not None

    def test_energy_objective_prefers_narrower_configs(self, small):
        """On a loop that scales but saturates nothing, minimum-energy
        configurations use fewer cores than minimum-time ones (idle and
        uncore power make width expensive while the speedup is sublinear
        near full width)."""
        app = make_synthetic(
            name="escale", mem_frac=0.6, blocked_fraction=0.0, reuse=0.0,
            gamma=0.8, timesteps=16, num_tasks=32, total_iters=128, region_mib=64,
        )
        time_sched = IlanScheduler(objective="time")
        OpenMPRuntime(small, scheduler=time_sched, seed=0).run_application(app)
        energy_sched = IlanScheduler(objective="energy")
        OpenMPRuntime(small, scheduler=energy_sched, seed=0).run_application(app)
        t_cfg = time_sched.controller("escale.loop").settled_config
        e_cfg = energy_sched.controller("escale.loop").settled_config
        assert e_cfg.num_threads <= t_cfg.num_threads

    def test_energy_objective_reduces_energy(self, small):
        app = make_synthetic(
            name="esave", mem_frac=0.7, blocked_fraction=0.0, reuse=0.0,
            gamma=1.0, timesteps=16, num_tasks=32, total_iters=128, region_mib=64,
        )
        m = EnergyModel()
        rt_time = OpenMPRuntime(small, scheduler=IlanScheduler(objective="time"), seed=0)
        rt_energy = OpenMPRuntime(
            small, scheduler=IlanScheduler(objective="energy", energy_model=m), seed=0
        )
        e_time = m.run_energy(rt_time.run_application(app))
        e_energy = m.run_energy(rt_energy.run_application(app))
        assert e_energy <= e_time * 1.02  # at worst equal modulo exploration
