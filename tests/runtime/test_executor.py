"""Unit/integration tests for the taskloop executor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memory.access import AccessPattern
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.schedulers.base import TaskloopPlan
from repro.runtime.taskloop import partition
from repro.runtime.worksteal import HierarchicalStealPolicy, NoStealPolicy, RandomStealPolicy
from tests.conftest import make_work


def simple_plan(ctx, work, *, cores=None, policy=None, spread=True, owner_lifo=True,
                steal_mode="random", static=False, extra_overhead=0.0):
    """All chunks on the first core unless spread, stealing per policy."""
    cores = cores if cores is not None else list(ctx.topology.core_ids())
    chunks = partition(work)
    queues = {c: [] for c in cores}
    if spread:
        for i, ch in enumerate(chunks):
            queues[cores[i % len(cores)]].append(ch)
    else:
        queues[cores[0]].extend(chunks)
    return TaskloopPlan(
        worker_cores=cores,
        initial_queues=queues,
        policy=policy or RandomStealPolicy(),
        owner_lifo=owner_lifo,
        num_threads=len(cores),
        node_mask_bits=(1 << ctx.topology.num_nodes) - 1,
        steal_mode=steal_mode,
        static=static,
        extra_overhead=extra_overhead,
    )


class TestBasicExecution:
    def test_all_chunks_execute(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        plan = simple_plan(tiny_ctx, work)
        result = TaskloopExecutor(tiny_ctx).run(work, plan)
        assert result.tasks_executed == 8
        assert result.elapsed > 0
        assert tiny_ctx.sim.now == pytest.approx(result.elapsed)

    def test_clock_advances_monotonically(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        TaskloopExecutor(tiny_ctx).run(work, simple_plan(tiny_ctx, work))
        t1 = tiny_ctx.sim.now
        work2 = make_work(tiny_ctx, uid="test.loop2", num_tasks=8)
        TaskloopExecutor(tiny_ctx).run(work2, simple_plan(tiny_ctx, work2))
        assert tiny_ctx.sim.now > t1

    def test_parallelism_speeds_up(self, tiny):
        """4 cores must beat 1 core on a balanced compute-bound loop."""
        times = {}
        for cores in ([0], [0, 1, 2, 3]):
            ctx = RunContext.create(tiny, seed=0)
            work = make_work(ctx, num_tasks=8, mem_frac=0.0, work_seconds=0.04)
            plan = simple_plan(ctx, work, cores=cores, spread=False,
                               policy=RandomStealPolicy())
            times[len(cores)] = TaskloopExecutor(ctx).run(work, plan).elapsed
        assert times[4] < times[1] / 2.5  # near-linear scaling minus overheads

    def test_elapsed_includes_barrier_and_creation(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8, mem_frac=0.0, work_seconds=1e-5)
        plan = simple_plan(tiny_ctx, work)
        result = TaskloopExecutor(tiny_ctx).run(work, plan)
        p = tiny_ctx.params
        floor = p.task_create * 8 + p.barrier_cost(4)
        assert result.elapsed > floor

    def test_deadlock_detected(self, tiny_ctx):
        """Strict chunks homed on a node with no workers can never run."""
        work = make_work(tiny_ctx, num_tasks=4)
        chunks = partition(work)
        for c in chunks:
            c.strict = True
            c.home_node = 1
        plan = TaskloopPlan(
            worker_cores=[0, 1],  # node 0 only
            initial_queues={0: chunks, 1: []},
            policy=NoStealPolicy(),
            owner_lifo=False,
            num_threads=2,
            node_mask_bits=0b01,
            steal_mode="strict",
        )
        # chunks sit on core 0's queue, so they do execute (owner runs them);
        # to force the deadlock put them on core 1's queue... they'd still
        # run. True deadlock needs an empty-queue worker set: queue them on
        # a core not in the pool -> plan validation catches that instead.
        with pytest.raises(ConfigurationError):
            TaskloopPlan(
                worker_cores=[0, 1],
                initial_queues={5: chunks},
                policy=NoStealPolicy(),
                owner_lifo=False,
                num_threads=2,
                node_mask_bits=0b01,
                steal_mode="strict",
            ).validate(work)

    def test_busy_machine_rejected(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        tiny_ctx.states.start(
            0, body=1.0, overhead=0.0, mem_frac=0.0, gamma=0.0,
            weights=np.zeros(2), payload=None,
        )
        with pytest.raises(SimulationError):
            TaskloopExecutor(tiny_ctx).run(work, simple_plan(tiny_ctx, work))


class TestPlanValidation:
    def test_duplicate_chunk_rejected(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=4)
        chunks = partition(work)
        plan = TaskloopPlan(
            worker_cores=[0], initial_queues={0: chunks + [chunks[0]]},
            policy=NoStealPolicy(), owner_lifo=True, num_threads=1,
            node_mask_bits=1, steal_mode="static",
        )
        with pytest.raises(ConfigurationError):
            plan.validate(work)

    def test_thread_count_mismatch_rejected(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=4)
        plan = TaskloopPlan(
            worker_cores=[0, 1], initial_queues={0: partition(work)},
            policy=NoStealPolicy(), owner_lifo=True, num_threads=3,
            node_mask_bits=1, steal_mode="static",
        )
        with pytest.raises(ConfigurationError):
            plan.validate(work)

    def test_empty_plans_rejected(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=4)
        with pytest.raises(ConfigurationError):
            TaskloopPlan(
                worker_cores=[], initial_queues={}, policy=NoStealPolicy(),
                owner_lifo=True, num_threads=0, node_mask_bits=1, steal_mode="x",
            ).validate(work)
        with pytest.raises(ConfigurationError):
            TaskloopPlan(
                worker_cores=[0], initial_queues={0: []}, policy=NoStealPolicy(),
                owner_lifo=True, num_threads=1, node_mask_bits=1, steal_mode="x",
            ).validate(work)


class TestMeasurement:
    def test_node_perf_reported_for_used_nodes(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        result = TaskloopExecutor(tiny_ctx).run(work, simple_plan(tiny_ctx, work))
        assert result.node_perf.shape == (2,)
        assert np.all(~np.isnan(result.node_perf))
        assert np.all(result.node_perf[~np.isnan(result.node_perf)] > 0)

    def test_unused_node_perf_is_nan(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        plan = simple_plan(tiny_ctx, work, cores=[0, 1], spread=False,
                           policy=HierarchicalStealPolicy(False), owner_lifo=False,
                           steal_mode="strict")
        result = TaskloopExecutor(tiny_ctx).run(work, plan)
        assert np.isnan(result.node_perf[1])
        assert result.node_perf[0] > 0

    def test_overhead_components_charged(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        result = TaskloopExecutor(tiny_ctx).run(
            work, simple_plan(tiny_ctx, work, extra_overhead=1e-6)
        )
        led = result.overhead
        assert led.task_create > 0
        assert led.barrier > 0
        assert led.select == pytest.approx(1e-6)

    def test_static_plan_charges_fork_not_creation(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8)
        plan = simple_plan(tiny_ctx, work, policy=NoStealPolicy(), static=True,
                           steal_mode="static")
        result = TaskloopExecutor(tiny_ctx).run(work, plan)
        assert result.overhead.fork > 0
        assert result.overhead.task_create == 0

    def test_steal_counters(self, tiny_ctx):
        work = make_work(tiny_ctx, num_tasks=8, mem_frac=0.0)
        plan = simple_plan(tiny_ctx, work, spread=False)  # all on core 0
        result = TaskloopExecutor(tiny_ctx).run(work, plan)
        assert result.steals_local + result.steals_remote > 0

    def test_trace_records_when_enabled(self, tiny):
        ctx = RunContext.create(tiny, seed=0, trace=True)
        work = make_work(ctx, num_tasks=8)
        TaskloopExecutor(ctx).run(work, simple_plan(ctx, work))
        assert len(ctx.trace.tasks) == 8
        assert len(ctx.trace.taskloops) == 1


class TestDeterminism:
    def test_same_seed_same_elapsed(self, tiny):
        results = []
        for _ in range(2):
            ctx = RunContext.create(tiny, seed=5)
            work = make_work(ctx, num_tasks=16, total_iters=64)
            results.append(TaskloopExecutor(ctx).run(work, simple_plan(ctx, work)).elapsed)
        assert results[0] == results[1]
