"""Unit tests for the baseline and work-sharing schedulers + registry."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.schedulers import (
    SCHEDULERS,
    BaselineScheduler,
    WorksharingScheduler,
    create_scheduler,
)
from repro.runtime.worksteal import NoStealPolicy, RandomStealPolicy
from tests.conftest import make_work


class TestRegistry:
    def test_known_schedulers(self):
        for name in ("baseline", "worksharing", "ilan", "ilan-nomold"):
            sched = create_scheduler(name)
            assert sched.name == name

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("magic")

    def test_registry_contains_builtin(self):
        create_scheduler("baseline")
        assert "baseline" in SCHEDULERS


class TestBaseline:
    def test_uses_all_cores(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = BaselineScheduler().plan(work, small_ctx)
        assert plan.worker_cores == list(range(16))
        assert plan.num_threads == 16
        assert isinstance(plan.policy, RandomStealPolicy)
        assert plan.owner_lifo

    def test_random_placement_spreads(self, small_ctx):
        work = make_work(small_ctx, num_tasks=32, total_iters=64)
        plan = BaselineScheduler().plan(work, small_ctx)
        used = [c for c, chunks in plan.initial_queues.items() if chunks]
        assert len(used) > 3  # with 32 random tasks over 16 queues

    def test_placement_varies_with_seed(self, small):
        def placement(seed):
            ctx = RunContext.create(small, seed=seed)
            work = make_work(ctx, num_tasks=16, total_iters=64)
            plan = BaselineScheduler().plan(work, ctx)
            return tuple(
                tuple(c.index for c in plan.initial_queues[core]) for core in range(16)
            )

        assert placement(1) != placement(2)

    def test_executes(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = BaselineScheduler().plan(work, small_ctx)
        result = TaskloopExecutor(small_ctx).run(work, plan)
        assert result.tasks_executed == 16
        assert result.steal_policy == "random"


class TestWorksharing:
    def test_one_block_per_thread(self, small_ctx):
        work = make_work(small_ctx, num_tasks=8, total_iters=64)
        plan = WorksharingScheduler().plan(work, small_ctx)
        assert plan.static
        assert isinstance(plan.policy, NoStealPolicy)
        assert all(len(chunks) == 1 for chunks in plan.initial_queues.values())
        assert plan.total_chunks == 16

    def test_blocks_in_iteration_order(self, small_ctx):
        work = make_work(small_ctx, num_tasks=8, total_iters=64)
        plan = WorksharingScheduler().plan(work, small_ctx)
        for core in range(16):
            (chunk,) = plan.initial_queues[core]
            assert chunk.index == core

    def test_fewer_iters_than_threads(self, small_ctx):
        work = make_work(small_ctx, num_tasks=4, total_iters=4)
        plan = WorksharingScheduler().plan(work, small_ctx)
        assert plan.total_chunks == 4

    def test_executes_without_steals(self, small_ctx):
        work = make_work(small_ctx, num_tasks=8, total_iters=64)
        plan = WorksharingScheduler().plan(work, small_ctx)
        result = TaskloopExecutor(small_ctx).run(work, plan)
        assert result.tasks_executed == 16
        assert result.steals_local == 0
        assert result.steals_remote == 0
        assert result.overhead.fork > 0


class TestRegistryKwargs:
    def test_create_with_kwargs(self):
        sched = create_scheduler("ilan", granularity=4, strict_fraction=0.5)
        assert sched.granularity == 4
        assert sched.strict_fraction == 0.5

    def test_create_baseline_with_affinity(self):
        sched = create_scheduler("baseline", num_threads=8, proc_bind="spread")
        assert sched.num_threads == 8

    def test_affinity_hint_registered(self):
        assert create_scheduler("affinity-hint").name == "affinity-hint"
