"""Unit tests for the task model (TaskloopWork / Chunk / SerialPhase)."""

import numpy as np
import pytest

from repro.errors import RuntimeModelError
from repro.memory.access import AccessPattern
from repro.runtime.task import Chunk, SerialPhase, TaskloopWork
from tests.conftest import make_work


class TestTaskloopWork:
    def test_weights_normalised(self, tiny_ctx):
        w = make_work(tiny_ctx, weights=np.array([1.0, 3.0]))
        assert w.weights.sum() == pytest.approx(1.0)
        assert w.weights[1] == pytest.approx(0.75)

    def test_validation(self, tiny_ctx):
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, total_iters=0)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, num_tasks=100, total_iters=10)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, work_seconds=0.0)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, mem_frac=1.2)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, reuse=-0.1)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, gamma=-1.0)
        with pytest.raises(RuntimeModelError):
            make_work(tiny_ctx, weights=np.array([0.0, 0.0]))

    def test_effective_working_set_default(self, tiny_ctx):
        w = make_work(tiny_ctx, num_tasks=8, region_bytes=64 * 1024 * 1024)
        assert w.effective_working_set == pytest.approx(w.region.num_bytes / 8)

    def test_effective_working_set_override(self, tiny_ctx):
        w = make_work(tiny_ctx)
        w.working_set_bytes = 123.0
        assert w.effective_working_set == 123.0


class TestChunk:
    def test_fields(self, tiny_ctx):
        w = make_work(tiny_ctx)
        c = Chunk(work=w, index=0, lo=0, hi=8, lo_frac=0.0, hi_frac=0.125, body_time=0.001)
        assert c.num_iters == 8
        assert c.home_node == -1
        assert not c.strict and not c.stolen

    def test_validation(self, tiny_ctx):
        w = make_work(tiny_ctx)
        with pytest.raises(RuntimeModelError):
            Chunk(work=w, index=0, lo=5, hi=5, lo_frac=0.0, hi_frac=0.1, body_time=0.1)
        with pytest.raises(RuntimeModelError):
            Chunk(work=w, index=0, lo=0, hi=5, lo_frac=0.0, hi_frac=0.1, body_time=0.0)


class TestSerialPhase:
    def test_ok(self):
        assert SerialPhase(0.5).seconds == 0.5
        assert SerialPhase(0.0).seconds == 0.0

    def test_negative_rejected(self):
        with pytest.raises(RuntimeModelError):
            SerialPhase(-0.1)


def test_pattern_plumbs_through(tiny_ctx):
    w = make_work(tiny_ctx, pattern=AccessPattern.uniform())
    assert w.pattern.is_uniform
