"""Tests for the baseline's num_threads / proc_bind affinity controls."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers.baseline import BaselineScheduler
from repro.workloads.synthetic import make_synthetic
from tests.conftest import make_work


class TestConstruction:
    def test_defaults(self):
        s = BaselineScheduler()
        assert s.num_threads is None
        assert s.proc_bind == "close"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BaselineScheduler(proc_bind="scatter")
        with pytest.raises(ConfigurationError):
            BaselineScheduler(num_threads=0)


class TestPlacement:
    def test_close_packs_first_cores(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = BaselineScheduler(num_threads=4, proc_bind="close").plan(work, small_ctx)
        assert plan.worker_cores == [0, 1, 2, 3]
        assert plan.num_threads == 4
        # all four threads sit in NUMA node 0
        assert plan.node_mask_bits == 0b0001

    def test_spread_covers_all_nodes(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = BaselineScheduler(num_threads=4, proc_bind="spread").plan(work, small_ctx)
        nodes = {small_ctx.topology.node_of_core(c) for c in plan.worker_cores}
        assert nodes == {0, 1, 2, 3}
        assert plan.node_mask_bits == 0b1111

    def test_oversubscription_rejected(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        with pytest.raises(ConfigurationError):
            BaselineScheduler(num_threads=99).plan(work, small_ctx)

    def test_default_uses_all_cores(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = BaselineScheduler().plan(work, small_ctx)
        assert plan.num_threads == 16


class TestBehaviour:
    def test_spread_beats_close_on_bandwidth_bound_loop(self, small):
        """Half the threads, memory-bound: spread reaches four memory
        controllers, close saturates one — the classic proc_bind effect."""
        app = make_synthetic(
            mem_frac=0.85, blocked_fraction=1.0, reuse=0.0, gamma=0.5,
            timesteps=4, num_tasks=32, total_iters=128, region_mib=64,
        )
        t_close = OpenMPRuntime(
            small, scheduler=BaselineScheduler(num_threads=8, proc_bind="close"), seed=0
        ).run_application(app).total_time
        t_spread = OpenMPRuntime(
            small, scheduler=BaselineScheduler(num_threads=8, proc_bind="spread"), seed=0
        ).run_application(app).total_time
        assert t_spread < t_close

    def test_reduced_team_runs_all_tasks(self, small):
        app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=32)
        res = OpenMPRuntime(
            small, scheduler=BaselineScheduler(num_threads=4), seed=0
        ).run_application(app)
        assert all(r.tasks_executed == 16 for r in res.taskloops)
        assert res.weighted_avg_threads == pytest.approx(4.0)
