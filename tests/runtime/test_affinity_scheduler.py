"""Tests for the OpenMP affinity-clause emulation scheduler."""

import pytest

from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers import create_scheduler
from repro.runtime.schedulers.affinity import AffinityHintScheduler
from repro.runtime.worksteal import RandomStealPolicy
from repro.workloads.synthetic import make_synthetic
from tests.conftest import make_work


class TestPlan:
    def test_registered(self):
        assert create_scheduler("affinity-hint").name == "affinity-hint"

    def test_all_cores_participate(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = AffinityHintScheduler().plan(work, small_ctx)
        assert plan.num_threads == 16
        assert isinstance(plan.policy, RandomStealPolicy)
        assert plan.owner_lifo

    def test_hints_place_blocks_on_owning_nodes(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = AffinityHintScheduler().plan(work, small_ctx)
        topo = small_ctx.topology
        for core, chunks in plan.initial_queues.items():
            node = topo.node_of_core(core)
            for chunk in chunks:
                # block i of 16 chunks over 4 nodes -> node i // 4
                assert chunk.index // 4 == node

    def test_nothing_is_strict(self, small_ctx):
        work = make_work(small_ctx, num_tasks=16, total_iters=64)
        plan = AffinityHintScheduler().plan(work, small_ctx)
        chunks = [c for q in plan.initial_queues.values() for c in q]
        assert not any(c.strict for c in chunks)

    def test_spreads_within_node(self, small_ctx):
        """Hints pick the node; the queue within the node is arbitrary."""
        work = make_work(small_ctx, num_tasks=64, total_iters=64)
        plan = AffinityHintScheduler().plan(work, small_ctx)
        used_in_node0 = [
            c for c in (0, 1, 2, 3) if plan.initial_queues[c]
        ]
        assert len(used_in_node0) >= 2


class TestBehaviour:
    def test_hint_ordering_on_blocked_workload(self, small):
        """Section 3.4: hints beat the blind baseline; ILAN's enforced
        hierarchy beats hints."""
        app = make_synthetic(
            mem_frac=0.5, blocked_fraction=1.0, reuse=0.4, gamma=0.2,
            timesteps=6, num_tasks=32, total_iters=128, region_mib=128,
        )
        times = {}
        for s in ("baseline", "affinity-hint", "ilan-nomold"):
            times[s] = OpenMPRuntime(small, scheduler=s, seed=0).run_application(app).total_time
        assert times["affinity-hint"] < times["baseline"]
        assert times["ilan-nomold"] < times["affinity-hint"] * 1.02

    def test_runs_all_tasks(self, tiny):
        app = make_synthetic(timesteps=2, num_tasks=16, total_iters=64, region_mib=32)
        res = OpenMPRuntime(tiny, scheduler="affinity-hint", seed=0).run_application(app)
        assert all(r.tasks_executed == 16 for r in res.taskloops)
