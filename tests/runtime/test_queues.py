"""Unit tests for the work-stealing deques."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.queues import WorkQueue
from repro.runtime.task import Chunk
from tests.conftest import make_work


@pytest.fixture
def chunks(tiny_ctx):
    w = make_work(tiny_ctx, total_iters=64, num_tasks=8)
    return [
        Chunk(work=w, index=i, lo=i * 8, hi=(i + 1) * 8, lo_frac=i / 8, hi_frac=(i + 1) / 8,
              body_time=0.001)
        for i in range(8)
    ]


class TestLifoDiscipline:
    """LLVM default: owner pops the most recent push; thieves take the oldest."""

    def test_owner_pops_lifo(self, chunks):
        q = WorkQueue(0, owner_lifo=True)
        q.extend(chunks[:3])
        assert q.pop_own().index == 2
        assert q.pop_own().index == 1

    def test_thief_steals_fifo(self, chunks):
        q = WorkQueue(0, owner_lifo=True)
        q.extend(chunks[:3])
        assert q.steal().index == 0
        assert q.steal().index == 1


class TestFifoDiscipline:
    """ILAN: owner consumes in iteration order; thieves take from the tail."""

    def test_owner_pops_fifo(self, chunks):
        q = WorkQueue(0, owner_lifo=False)
        q.extend(chunks[:3])
        assert q.pop_own().index == 0

    def test_thief_steals_from_tail(self, chunks):
        q = WorkQueue(0, owner_lifo=False)
        q.extend(chunks[:3])
        assert q.steal().index == 2


class TestStealPredicate:
    def test_ineligible_exposed_task_blocks_steal(self, chunks):
        q = WorkQueue(0, owner_lifo=False)
        chunks[2].strict = True
        q.extend(chunks[:3])  # tail (index 2) is strict
        assert q.steal(predicate=lambda c: not c.strict) is None
        assert len(q) == 3  # nothing removed

    def test_eligible_task_stolen(self, chunks):
        q = WorkQueue(0, owner_lifo=False)
        chunks[0].strict = True
        q.extend(chunks[:3])
        got = q.steal(predicate=lambda c: not c.strict)
        assert got.index == 2


class TestBookkeeping:
    def test_counters(self, chunks):
        q = WorkQueue(0)
        q.push(chunks[0])
        q.extend(chunks[1:3])
        q.pop_own()
        q.steal()
        assert q.pushed == 3 and q.popped == 1 and q.stolen_from == 1

    def test_empty_pops_return_none(self):
        q = WorkQueue(0)
        assert q.pop_own() is None
        assert q.steal() is None

    def test_peek(self, chunks):
        q = WorkQueue(0, owner_lifo=True)
        assert q.peek_thief_end() is None
        q.extend(chunks[:2])
        assert q.peek_thief_end().index == 0
        assert len(q) == 2

    def test_drain(self, chunks):
        q = WorkQueue(0)
        q.extend(chunks[:4])
        out = q.drain()
        assert [c.index for c in out] == [0, 1, 2, 3]
        assert q.is_empty()

    def test_require_empty(self, chunks):
        q = WorkQueue(0)
        q.require_empty()
        q.push(chunks[0])
        with pytest.raises(RuntimeModelError):
            q.require_empty()


class TestListener:
    class Recorder:
        def __init__(self):
            self.events = []

        def queue_nonempty(self, owner):
            self.events.append(("nonempty", owner))

        def queue_empty(self, owner):
            self.events.append(("empty", owner))

    def test_transitions(self, chunks):
        q = WorkQueue(5)
        rec = self.Recorder()
        q.listener = rec
        q.push(chunks[0])
        q.push(chunks[1])  # no transition
        q.pop_own()
        q.pop_own()
        assert rec.events == [("nonempty", 5), ("empty", 5)]

    def test_steal_transition(self, chunks):
        q = WorkQueue(5)
        rec = self.Recorder()
        q.listener = rec
        q.extend(chunks[:1])
        q.steal()
        assert rec.events == [("nonempty", 5), ("empty", 5)]

    def test_drain_transition(self, chunks):
        q = WorkQueue(5)
        rec = self.Recorder()
        q.listener = rec
        q.extend(chunks[:2])
        q.drain()
        assert rec.events[-1] == ("empty", 5)
