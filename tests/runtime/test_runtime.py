"""Integration tests for the OpenMPRuntime facade."""

import pytest

from repro.errors import RuntimeModelError
from repro.interference.noise import NoiseParams
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_synthetic


@pytest.fixture
def app():
    return make_synthetic(timesteps=3, num_tasks=16, total_iters=64, region_mib=32)


class TestRunApplication:
    def test_baseline_runs(self, tiny, app):
        result = OpenMPRuntime(tiny, scheduler="baseline", seed=0).run_application(app)
        assert result.app_name == app.name
        assert result.scheduler == "baseline"
        assert result.total_time > 0
        assert len(result.taskloops) == 3  # one loop x 3 timesteps

    def test_all_schedulers_run(self, tiny, app):
        for name in ("baseline", "worksharing", "ilan", "ilan-nomold"):
            result = OpenMPRuntime(tiny, scheduler=name, seed=0).run_application(app)
            assert result.taskloops, name
            # work sharing runs one block per thread; tasking runs num_tasks
            expected = 4 if name == "worksharing" else 16
            assert all(r.tasks_executed == expected for r in result.taskloops)

    def test_timesteps_override(self, tiny, app):
        result = OpenMPRuntime(tiny, seed=0).run_application(app, timesteps=5)
        assert len(result.taskloops) == 5

    def test_bad_timesteps(self, tiny, app):
        with pytest.raises(RuntimeModelError):
            OpenMPRuntime(tiny, seed=0).run_application(app, timesteps=0)

    def test_serial_phases_advance_clock(self, tiny):
        app = make_synthetic(timesteps=2, num_tasks=8, total_iters=64, region_mib=32)
        fast = OpenMPRuntime(tiny, seed=0).run_application(app)
        slow_app = make_synthetic(timesteps=2, num_tasks=8, total_iters=64, region_mib=32)
        object.__setattr__(slow_app, "serial_seconds", 0.5) if False else None
        slow_app.serial_seconds = 0.5
        slow = OpenMPRuntime(tiny, seed=0).run_application(slow_app)
        assert slow.total_time >= fast.total_time + 0.9  # 2 x 0.5s serial

    def test_scheduler_instance_accepted(self, tiny, app):
        from repro.runtime.schedulers import BaselineScheduler

        result = OpenMPRuntime(tiny, scheduler=BaselineScheduler(), seed=0).run_application(app)
        assert result.scheduler == "baseline"


class TestDeterminismAndSeeds:
    def test_same_seed_bitwise_identical(self, tiny, app):
        a = OpenMPRuntime(tiny, scheduler="baseline", seed=3).run_application(app)
        b = OpenMPRuntime(tiny, scheduler="baseline", seed=3).run_application(app)
        assert a.total_time == b.total_time

    def test_seed_override_in_run(self, tiny, app):
        rt = OpenMPRuntime(tiny, scheduler="baseline", seed=3)
        a = rt.run_application(app)
        b = rt.run_application(app, seed=4)
        assert a.seed == 3 and b.seed == 4
        assert a.total_time != b.total_time

    def test_repeated_runs_independent(self, tiny, app):
        """Scheduler state must reset between runs: ILAN run 2 == run 1."""
        rt = OpenMPRuntime(tiny, scheduler="ilan", seed=3)
        a = rt.run_application(app)
        b = rt.run_application(app)
        assert a.total_time == pytest.approx(b.total_time)

    def test_noise_changes_time(self, tiny, app):
        quiet = OpenMPRuntime(tiny, seed=0).run_application(app)
        noisy = OpenMPRuntime(
            tiny, seed=0,
            noise=NoiseParams(mean_interval=0.001, mean_duration=0.002, slow_factor=0.3),
        ).run_application(app)
        assert noisy.total_time > quiet.total_time


class TestAggregates:
    def test_weighted_avg_threads(self, tiny, app):
        result = OpenMPRuntime(tiny, scheduler="baseline", seed=0).run_application(app)
        assert result.weighted_avg_threads == pytest.approx(4.0)  # all cores, always

    def test_loop_times(self, tiny, app):
        result = OpenMPRuntime(tiny, scheduler="baseline", seed=0).run_application(app)
        uid = f"{app.name}.loop"
        assert len(result.loop_times(uid)) == 3

    def test_overhead_by_component(self, tiny, app):
        result = OpenMPRuntime(tiny, scheduler="baseline", seed=0).run_application(app)
        parts = result.overhead_by_component()
        assert parts["task_create"] > 0
        assert parts["barrier"] > 0
        assert sum(parts.values()) == pytest.approx(result.total_overhead)
