"""Unit tests for result aggregation (synthetic results, no simulation)."""

import numpy as np
import pytest

from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import AppRunResult, TaskloopResult


def loop_result(uid="app.loop", elapsed=1.0, threads=4, **charges):
    led = OverheadLedger()
    for component, amount in charges.items():
        led.charge(component, amount)
    return TaskloopResult(
        uid=uid, name=uid.split(".")[-1], elapsed=elapsed, num_threads=threads,
        node_mask_bits=0b11, steal_policy="strict", overhead=led,
        node_perf=np.array([1.0, np.nan]), node_busy=np.array([1.0, 0.0]),
        tasks_executed=8, steals_local=2, steals_remote=1,
    )


class TestAppRunResult:
    def test_weighted_avg_threads(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=3.0)
        res.taskloops = [
            loop_result(elapsed=1.0, threads=64),
            loop_result(elapsed=3.0, threads=32),
        ]
        # (64*1 + 32*3) / 4 = 40
        assert res.weighted_avg_threads == pytest.approx(40.0)

    def test_weighted_avg_empty(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=0.0)
        assert res.weighted_avg_threads == 0.0

    def test_total_overhead_sums(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=1.0)
        res.taskloops = [
            loop_result(dequeue=1e-6, barrier=2e-6),
            loop_result(steal_local=3e-6),
        ]
        assert res.total_overhead == pytest.approx(6e-6)

    def test_steal_totals(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=1.0)
        res.taskloops = [loop_result(), loop_result()]
        assert res.total_steals_local == 4
        assert res.total_steals_remote == 2

    def test_loop_times_filters_uid(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=1.0)
        res.taskloops = [
            loop_result(uid="a.x", elapsed=1.0),
            loop_result(uid="a.y", elapsed=2.0),
            loop_result(uid="a.x", elapsed=3.0),
        ]
        assert res.loop_times("a.x") == [1.0, 3.0]
        assert res.loop_times("a.z") == []

    def test_overhead_by_component_matches_total(self):
        res = AppRunResult(app_name="a", scheduler="s", seed=0, total_time=1.0)
        res.taskloops = [
            loop_result(dequeue=1e-6, fork=4e-6, select=2e-6),
            loop_result(ptt_update=5e-7),
        ]
        parts = res.overhead_by_component()
        assert sum(parts.values()) == pytest.approx(res.total_overhead)
        assert parts["fork"] == pytest.approx(4e-6)


class TestTaskloopResult:
    def test_overhead_total_property(self):
        r = loop_result(barrier=1e-6, steal_remote=2e-6)
        assert r.overhead_total == pytest.approx(3e-6)
