"""Unit tests for work acquisition and the steal policies."""

import pytest

from repro.runtime.overhead import OverheadLedger, OverheadParams
from repro.runtime.task import Chunk
from repro.runtime.threads import WorkerPool
from repro.runtime.worksteal import (
    HierarchicalStealPolicy,
    NoStealPolicy,
    RandomStealPolicy,
)
from repro.sim.rng import stream
from tests.conftest import make_work


@pytest.fixture
def params():
    return OverheadParams()


@pytest.fixture
def rng():
    return stream(11, "test", "steal")


def fill(pool, core, work, indices, strict=()):
    chunks = []
    for i in indices:
        c = Chunk(work=work, index=i, lo=i, hi=i + 1, lo_frac=i / 64,
                  hi_frac=(i + 1) / 64, body_time=0.001, strict=i in strict)
        chunks.append(c)
    pool.worker_for_core(core).queue.extend(chunks)
    return chunks


class TestAcquireOwnQueue:
    def test_own_queue_first(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(8)))
        fill(pool, 3, w, [0, 1])
        led = OverheadLedger()
        acq = RandomStealPolicy().acquire(pool.worker_for_core(3), pool, rng, params, led)
        assert acq.source == "own"
        assert acq.overhead == params.dequeue
        assert led.dequeue > 0

    def test_nothing_anywhere(self, small, params, rng):
        pool = WorkerPool(small, list(range(8)))
        led = OverheadLedger()
        acq = RandomStealPolicy().acquire(pool.worker_for_core(0), pool, rng, params, led)
        assert acq is None


class TestRandomSteal:
    def test_steals_from_any_victim(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 15, w, [0])  # victim on the far socket
        led = OverheadLedger()
        acq = RandomStealPolicy().acquire(pool.worker_for_core(0), pool, rng, params, led)
        assert acq is not None
        assert acq.source == "steal_remote"
        assert acq.victim_core == 15
        assert acq.chunk.stolen

    def test_local_victim_charged_local(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, [0, 1])
        fill(pool, 1, w, [0])
        led = OverheadLedger()
        acq = RandomStealPolicy().acquire(pool.worker_for_core(0), pool, rng, params, led)
        assert acq.source == "steal_local"
        assert led.steal_local == pytest.approx(params.steal_local)

    def test_ignores_topology(self, small, small_ctx, params, rng):
        """Random stealing takes strict-marked tasks too (baseline never
        marks them, but the policy itself is topology-blind)."""
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 12, w, [0], strict={0})
        acq = RandomStealPolicy().acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq is not None


class TestHierarchicalSteal:
    def test_prefers_local_node(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 1, w, [0])   # same node as thief core 0
        fill(pool, 15, w, [1])  # remote
        acq = HierarchicalStealPolicy(allow_inter_node=True).acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq.source == "steal_local"
        assert acq.victim_core == 1

    def test_strict_policy_never_crosses_nodes(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 15, w, [0])
        acq = HierarchicalStealPolicy(allow_inter_node=False).acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq is None

    def test_full_policy_crosses_when_node_drained(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 15, w, [0])
        acq = HierarchicalStealPolicy(allow_inter_node=True).acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq.source == "steal_remote"

    def test_full_policy_blocked_while_own_node_has_work(self, small, small_ctx, params, rng):
        """Inter-node stealing requires the thief's node to be fully idle;
        here a sibling still holds work the thief cannot reach... it can
        reach it (local steal) — so give the sibling a queue the thief
        drains first."""
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 1, w, [5])
        fill(pool, 15, w, [6])
        acq = HierarchicalStealPolicy(allow_inter_node=True).acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq.source == "steal_local"  # local first, never remote here

    def test_strict_chunks_never_stolen_remotely(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 15, w, [0], strict={0})
        led = OverheadLedger()
        acq = HierarchicalStealPolicy(allow_inter_node=True).acquire(
            pool.worker_for_core(0), pool, rng, params, led
        )
        assert acq is None
        assert led.counts.get("steal_fail", 0) >= 1

    def test_stealable_tail_behind_strict_head(self, small, small_ctx, params, rng):
        """ILAN layout: strict prefix, stealable tail; remote thieves reach
        the tail because they steal from the back of a FIFO-owner queue."""
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)), owner_lifo=False)
        fill(pool, 15, w, [0, 1, 2, 3], strict={0, 1, 2})
        acq = HierarchicalStealPolicy(allow_inter_node=True).acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq is not None
        assert acq.chunk.index == 3


class TestNoSteal:
    def test_never_steals(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 1, w, [0])
        acq = NoStealPolicy().acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq is None

    def test_own_queue_still_works(self, small, small_ctx, params, rng):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(16)))
        fill(pool, 0, w, [0])
        acq = NoStealPolicy().acquire(
            pool.worker_for_core(0), pool, rng, params, OverheadLedger()
        )
        assert acq.source == "own"
