"""Unit tests for the overhead cost model and ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.overhead import OverheadLedger, OverheadParams


class TestParams:
    def test_defaults_positive(self):
        p = OverheadParams()
        assert p.steal_remote > p.steal_local > p.dequeue

    def test_barrier_grows_with_threads(self):
        p = OverheadParams()
        assert p.barrier_cost(64) > p.barrier_cost(8) > 0

    def test_barrier_validation(self):
        with pytest.raises(ConfigurationError):
            OverheadParams().barrier_cost(0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadParams(dequeue=-1.0)

    def test_frozen(self):
        p = OverheadParams()
        with pytest.raises(AttributeError):
            p.dequeue = 1.0


class TestLedger:
    def test_charge_and_total(self):
        led = OverheadLedger()
        led.charge("dequeue", 1e-6)
        led.charge("steal_remote", 5e-6)
        led.charge("barrier", 2e-6)
        assert led.total == pytest.approx(8e-6)
        assert led.counts == {"dequeue": 1, "steal_remote": 1, "barrier": 1}

    def test_charge_counts(self):
        led = OverheadLedger()
        led.charge("steal_fail", 3e-7, count=3)
        assert led.counts["steal_fail"] == 3

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            OverheadLedger().charge("bribes", 1.0)

    def test_merge(self):
        a = OverheadLedger()
        a.charge("dequeue", 1e-6)
        b = OverheadLedger()
        b.charge("dequeue", 2e-6)
        b.charge("select", 4e-6)
        a.merge(b)
        assert a.dequeue == pytest.approx(3e-6)
        assert a.select == pytest.approx(4e-6)
        assert a.counts["dequeue"] == 2

    def test_empty_total_zero(self):
        assert OverheadLedger().total == 0.0
