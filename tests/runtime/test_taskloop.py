"""Unit tests for taskloop partitioning and the work-density profile."""

import numpy as np
import pytest

from repro.errors import RuntimeModelError
from repro.runtime.taskloop import chunk_bounds, partition, profile_mass
from tests.conftest import make_work


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        bounds = chunk_bounds(10, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 3, 2, 2]

    def test_covers_exactly(self):
        for total, n in [(100, 7), (64, 64), (5, 1)]:
            bounds = chunk_bounds(total, n)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == total
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c

    def test_validation(self):
        with pytest.raises(RuntimeModelError):
            chunk_bounds(4, 0)
        with pytest.raises(RuntimeModelError):
            chunk_bounds(4, 5)


class TestProfileMass:
    def test_uniform_mass_proportional(self):
        w = np.ones(8) / 8
        assert profile_mass(w, 0.0, 0.5) == pytest.approx(0.5)
        assert profile_mass(w, 0.25, 0.75) == pytest.approx(0.5)

    def test_partial_cells(self):
        w = np.ones(4) / 4
        assert profile_mass(w, 0.0, 0.125) == pytest.approx(0.125)

    def test_tiling_sums_to_one(self):
        rng = np.random.default_rng(0)
        w = rng.random(32)
        w /= w.sum()
        cuts = np.linspace(0, 1, 11)
        total = sum(profile_mass(w, a, b) for a, b in zip(cuts, cuts[1:]))
        assert total == pytest.approx(1.0)

    def test_empty_span(self):
        w = np.ones(4) / 4
        assert profile_mass(w, 0.5, 0.5) == 0.0

    def test_bad_span(self):
        with pytest.raises(RuntimeModelError):
            profile_mass(np.ones(4), 0.6, 0.4)


class TestPartition:
    def test_chunk_count_and_coverage(self, tiny_ctx):
        w = make_work(tiny_ctx, total_iters=64, num_tasks=8)
        chunks = partition(w)
        assert len(chunks) == 8
        assert chunks[0].lo == 0
        assert chunks[-1].hi == 64
        assert all(c.index == i for i, c in enumerate(chunks))

    def test_body_times_sum_to_work(self, tiny_ctx):
        w = make_work(tiny_ctx, work_seconds=0.5, total_iters=64, num_tasks=7)
        chunks = partition(w)
        assert sum(c.body_time for c in chunks) == pytest.approx(0.5)

    def test_imbalanced_profile_respected(self, tiny_ctx):
        weights = np.concatenate([np.ones(32), np.ones(32) * 3.0])
        w = make_work(tiny_ctx, weights=weights, total_iters=64, num_tasks=2)
        chunks = partition(w)
        assert chunks[1].body_time == pytest.approx(3 * chunks[0].body_time)

    def test_override_chunk_count(self, tiny_ctx):
        w = make_work(tiny_ctx, total_iters=64, num_tasks=8)
        chunks = partition(w, num_chunks=4)
        assert len(chunks) == 4

    def test_all_bodies_positive(self, tiny_ctx):
        weights = np.zeros(64)
        weights[0] = 1.0  # pathological: all mass in one cell
        w = make_work(tiny_ctx, weights=weights, total_iters=64, num_tasks=8)
        chunks = partition(w)
        assert all(c.body_time > 0 for c in chunks)

    def test_fracs_match_iteration_space(self, tiny_ctx):
        w = make_work(tiny_ctx, total_iters=10, num_tasks=3)
        chunks = partition(w)
        assert chunks[0].lo_frac == 0.0
        assert chunks[-1].hi_frac == pytest.approx(1.0)
        for c in chunks:
            assert c.lo_frac == pytest.approx(c.lo / 10)
