"""Unit tests for workers and the worker pool."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.task import Chunk
from repro.runtime.threads import WorkerPool
from tests.conftest import make_work


def make_chunk(w, i=0):
    return Chunk(work=w, index=i, lo=i, hi=i + 1, lo_frac=i / 64, hi_frac=(i + 1) / 64,
                 body_time=0.001)


class TestPoolConstruction:
    def test_full_machine(self, small):
        pool = WorkerPool(small, list(range(16)))
        assert len(pool) == 16
        assert pool.core_ids() == list(range(16))
        assert pool.node_ids() == [0, 1, 2, 3]

    def test_partial_pool(self, small):
        pool = WorkerPool(small, [0, 1, 4, 5])
        assert pool.node_ids() == [0, 1]
        assert len(pool.workers_in_node(0)) == 2
        assert pool.workers_in_node(3) == []

    def test_worker_ids_dense_in_core_order(self, small):
        pool = WorkerPool(small, [5, 0, 9])
        assert [w.core_id for w in pool.workers] == [0, 5, 9]
        assert [w.worker_id for w in pool.workers] == [0, 1, 2]

    def test_empty_rejected(self, small):
        with pytest.raises(RuntimeModelError):
            WorkerPool(small, [])

    def test_duplicates_rejected(self, small):
        with pytest.raises(RuntimeModelError):
            WorkerPool(small, [0, 0])

    def test_primary_worker_of_node(self, small):
        pool = WorkerPool(small, [1, 2, 3])
        assert pool.primary_worker_of_node(0).core_id == 1
        with pytest.raises(RuntimeModelError):
            pool.primary_worker_of_node(3)

    def test_worker_for_core_unknown(self, small):
        pool = WorkerPool(small, [0, 1])
        with pytest.raises(RuntimeModelError):
            pool.worker_for_core(9)


class TestNonemptyTracking:
    def test_initially_empty(self, small):
        pool = WorkerPool(small, list(range(8)))
        assert not pool.any_work()
        assert pool.node_queues_empty(0)

    def test_push_updates_sets(self, small_ctx, small):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(8)))
        pool.worker_for_core(2).queue.push(make_chunk(w))
        assert pool.any_work()
        assert pool.nonempty == {2}
        assert not pool.node_queues_empty(0)
        assert pool.node_queues_empty(1)

    def test_drain_clears_sets(self, small_ctx, small):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(8)))
        q = pool.worker_for_core(2).queue
        q.push(make_chunk(w, 0))
        q.pop_own()
        assert not pool.any_work()
        assert pool.node_queues_empty(0)

    def test_total_queued(self, small_ctx, small):
        w = make_work(small_ctx)
        pool = WorkerPool(small, list(range(4)))
        pool.worker_for_core(0).queue.extend([make_chunk(w, i) for i in range(3)])
        assert pool.total_queued() == 3
