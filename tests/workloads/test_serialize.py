"""Unit tests for workload serialisation."""

import pytest

from repro.errors import WorkloadError
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.registry import PAPER_ORDER, make_benchmark
from repro.workloads.serialize import (
    application_from_dict,
    application_to_dict,
    load_application,
    save_application,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_every_benchmark_roundtrips(self, name):
        app = make_benchmark(name)
        clone = application_from_dict(application_to_dict(app))
        assert clone.name == app.name
        assert clone.timesteps == app.timesteps
        assert len(clone.loops) == len(app.loops)
        for a, b in zip(clone.loops, app.loops):
            assert a == b
        for a, b in zip(clone.regions, app.regions):
            assert a == b

    def test_file_roundtrip(self, tmp_path):
        app = make_benchmark("cg", timesteps=7)
        path = save_application(app, tmp_path / "cg.json")
        clone = load_application(path)
        assert application_to_dict(clone) == application_to_dict(app)

    def test_loaded_app_runs(self, tiny, tmp_path):
        app = make_benchmark("matmul", timesteps=2)
        clone = load_application(save_application(app, tmp_path / "m.json"))
        res = OpenMPRuntime(tiny, scheduler="ilan", seed=0).run_application(clone)
        assert res.total_time > 0


class TestFromDict:
    def test_minimal_definition(self):
        app = application_from_dict(
            {
                "name": "mini",
                "regions": [{"name": "d", "mib": 64}],
                "loops": [
                    {"name": "l", "region": "d", "work_seconds": 0.1, "mem_frac": 0.5}
                ],
            }
        )
        assert app.timesteps == 50
        assert app.loops[0].pattern.is_blocked
        assert app.loops[0].num_tasks == 256

    def test_missing_field_rejected(self):
        with pytest.raises(WorkloadError):
            application_from_dict({"name": "x", "regions": [], "loops": [{"name": "l"}]})

    def test_bad_policy_rejected(self):
        with pytest.raises(WorkloadError):
            application_from_dict(
                {
                    "name": "x",
                    "regions": [{"name": "d", "mib": 1, "policy": "teleport"}],
                    "loops": [
                        {"name": "l", "region": "d", "work_seconds": 0.1, "mem_frac": 0.5}
                    ],
                }
            )
