"""Tests for the seven paper-benchmark models."""

import pytest

from repro.errors import WorkloadError
from repro.runtime.context import RunContext
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.registry import BENCHMARKS, PAPER_ORDER, benchmark_names, make_benchmark


class TestRegistry:
    def test_all_seven_present(self):
        assert set(PAPER_ORDER) == {"ft", "bt", "cg", "lu", "sp", "matmul", "lulesh"}
        assert set(BENCHMARKS) == set(PAPER_ORDER)
        assert benchmark_names() == PAPER_ORDER

    def test_make_benchmark(self):
        app = make_benchmark("cg", timesteps=5)
        assert app.name == "cg"
        assert app.timesteps == 5

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            make_benchmark("hpl")


class TestModelCharacters:
    """The models must encode the paper's workload characterisation."""

    def test_cg_is_irregular_and_memory_bound(self):
        cg = make_benchmark("cg")
        spmv = next(lp for lp in cg.loops if lp.name == "spmv")
        assert spmv.pattern.is_uniform
        assert spmv.mem_frac >= 0.7
        assert spmv.gamma >= 1.0
        assert spmv.imbalance == "clustered"  # spatially correlated row densities

    def test_sp_is_most_contention_sensitive(self):
        sp = make_benchmark("sp")
        others = [lp.gamma for name in ("ft", "bt", "lu", "matmul") for lp in make_benchmark(name).loops]
        assert min(lp.gamma for lp in sp.loops) > max(others)

    def test_matmul_is_compute_bound(self):
        mm = make_benchmark("matmul")
        (gemm,) = mm.loops
        assert gemm.mem_frac <= 0.1
        assert gemm.gamma == 0.0
        assert gemm.pattern.is_blocked
        assert gemm.imbalance == "uniform"

    def test_ft_is_balanced(self):
        ft = make_benchmark("ft")
        assert all(lp.imbalance == "uniform" for lp in ft.loops)

    def test_bt_has_three_sweeps(self):
        bt = make_benchmark("bt")
        assert [lp.name for lp in bt.loops] == ["x_solve", "y_solve", "z_solve"]

    def test_lulesh_has_diverse_loops(self):
        lulesh = make_benchmark("lulesh")
        assert len(lulesh.loops) == 5
        patterns = {lp.pattern.blocked_fraction for lp in lulesh.loops}
        assert len(patterns) >= 2  # genuinely mixed characters

    def test_blocked_benchmarks_have_reuse(self):
        for name in ("ft", "bt", "lu", "matmul"):
            app = make_benchmark(name)
            assert max(lp.reuse for lp in app.loops) >= 0.15, name


class TestModelsRun:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_each_benchmark_runs_on_tiny_machine(self, tiny, name):
        app = make_benchmark(name, timesteps=2)
        result = OpenMPRuntime(tiny, scheduler="baseline", seed=0).run_application(app)
        assert result.total_time > 0
        assert len(result.taskloops) == 2 * len(app.loops)

    def test_setup_allocates_all_regions(self, tiny):
        for name in PAPER_ORDER:
            ctx = RunContext.create(tiny, seed=0)
            app = make_benchmark(name)
            app.setup(ctx)
            for r in app.regions:
                assert r.name in ctx.mem
