"""Unit tests for the synthetic workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.synthetic import make_mixed, make_synthetic


class TestMakeSynthetic:
    def test_knobs_plumb_through(self):
        app = make_synthetic(
            mem_frac=0.7, blocked_fraction=0.3, reuse=0.2, gamma=1.2,
            imbalance="irregular", imbalance_cv=0.4, num_tasks=32, total_iters=128,
        )
        (lp,) = app.loops
        assert lp.mem_frac == 0.7
        assert lp.pattern.blocked_fraction == 0.3
        assert lp.reuse == 0.2
        assert lp.gamma == 1.2
        assert lp.num_tasks == 32

    def test_runs(self, tiny):
        app = make_synthetic(timesteps=2, num_tasks=8, total_iters=64, region_mib=16)
        result = OpenMPRuntime(tiny, seed=0).run_application(app)
        assert result.total_time > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_synthetic(region_mib=0)
        with pytest.raises(WorkloadError):
            make_synthetic(mem_frac=1.5)


class TestMakeMixed:
    def test_two_contrasting_loops(self):
        app = make_mixed()
        by_name = {lp.name: lp for lp in app.loops}
        assert by_name["compute"].mem_frac < 0.2
        assert by_name["memory"].mem_frac > 0.6
        assert by_name["compute"].gamma == 0.0
        assert by_name["memory"].gamma > 1.0

    def test_distinct_regions(self):
        app = make_mixed()
        assert len(app.regions) == 2
        assert {lp.region for lp in app.loops} == {"dense", "sparse"}

    def test_runs_under_ilan(self, tiny):
        app = make_mixed(timesteps=2)
        result = OpenMPRuntime(tiny, scheduler="ilan", seed=0).run_application(app)
        assert len(result.taskloops) == 4
