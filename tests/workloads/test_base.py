"""Unit tests for the workload model base types."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.runtime.context import RunContext
from repro.runtime.task import SerialPhase, TaskloopWork
from repro.workloads.base import (
    Application,
    RegionSpec,
    TaskloopSpec,
    imbalance_profile,
)


def spec(**kw):
    defaults = dict(
        name="loop", region="r", work_seconds=0.1, mem_frac=0.5,
        pattern=AccessPattern.blocked(),
    )
    defaults.update(kw)
    return TaskloopSpec(**defaults)


def app(loops=None, **kw):
    defaults = dict(
        name="app",
        regions=[RegionSpec("r", 32 * 1024 * 1024)],
        loops=loops or [spec()],
        timesteps=2,
    )
    defaults.update(kw)
    return Application(**defaults)


class TestImbalanceProfile:
    def test_uniform(self):
        w = imbalance_profile("uniform", 0.0, key="x")
        assert np.allclose(w, w[0])
        assert w.sum() == pytest.approx(1.0)

    def test_linear_ramp_cv(self):
        w = imbalance_profile("linear", 0.3, key="x", cells=4096)
        cv = w.std() / w.mean()
        assert cv == pytest.approx(0.3, rel=0.05)
        assert w[-1] > w[0]

    def test_linear_extreme_cv_clamped(self):
        w = imbalance_profile("linear", 5.0, key="x")
        assert np.all(w > 0)

    def test_irregular_cv(self):
        w = imbalance_profile("irregular", 0.5, key="x", cells=8192)
        cv = w.std() / w.mean()
        assert cv == pytest.approx(0.5, rel=0.15)

    def test_irregular_deterministic_per_key(self):
        a = imbalance_profile("irregular", 0.5, key="app.loop")
        b = imbalance_profile("irregular", 0.5, key="app.loop")
        c = imbalance_profile("irregular", 0.5, key="app.other")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_irregular_zero_cv_uniform(self):
        w = imbalance_profile("irregular", 0.0, key="x")
        assert np.allclose(w, w[0])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            imbalance_profile("weird", 0.1, key="x")
        with pytest.raises(WorkloadError):
            imbalance_profile("uniform", -1.0, key="x")
        with pytest.raises(WorkloadError):
            imbalance_profile("uniform", 0.0, key="x", cells=1)


class TestSpecs:
    def test_taskloop_spec_validation(self):
        with pytest.raises(WorkloadError):
            spec(work_seconds=0.0)
        with pytest.raises(WorkloadError):
            spec(mem_frac=2.0)
        with pytest.raises(WorkloadError):
            spec(reuse=-0.1)
        with pytest.raises(WorkloadError):
            spec(gamma=-1.0)
        with pytest.raises(WorkloadError):
            spec(num_tasks=0)
        with pytest.raises(WorkloadError):
            spec(num_tasks=10, total_iters=5)
        with pytest.raises(WorkloadError):
            spec(repeat=0)

    def test_region_spec_validation(self):
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0)


class TestApplication:
    def test_valid_app(self):
        a = app()
        assert a.loop_uids() == ["app.loop"]

    def test_duplicate_loop_names_rejected(self):
        with pytest.raises(WorkloadError):
            app(loops=[spec(), spec()])

    def test_unknown_region_rejected(self):
        with pytest.raises(WorkloadError):
            app(loops=[spec(region="nope")])

    def test_duplicate_regions_rejected(self):
        with pytest.raises(WorkloadError):
            Application(
                name="a",
                regions=[RegionSpec("r", 1024), RegionSpec("r", 2048)],
                loops=[spec()],
            )

    def test_setup_allocates_regions(self, tiny):
        ctx = RunContext.create(tiny, seed=0)
        app().setup(ctx)
        assert "r" in ctx.mem

    def test_encounters_yield_works_in_order(self, tiny):
        ctx = RunContext.create(tiny, seed=0)
        a = app(loops=[spec(name="a"), spec(name="b")], serial_seconds=0.01)
        a.setup(ctx)
        items = list(a.encounters(0, ctx))
        assert isinstance(items[0], SerialPhase)
        assert isinstance(items[1], TaskloopWork)
        assert items[1].uid == "app.a"
        assert items[2].uid == "app.b"

    def test_repeat_yields_multiple_encounters(self, tiny):
        ctx = RunContext.create(tiny, seed=0)
        a = app(loops=[spec(repeat=3)])
        a.setup(ctx)
        works = [i for i in a.encounters(0, ctx) if isinstance(i, TaskloopWork)]
        assert len(works) == 3
        assert len({id(w) for w in works}) == 3

    def test_total_work_seconds(self):
        a = app(loops=[spec(work_seconds=0.5), spec(name="b", work_seconds=0.25)])
        assert a.total_work_seconds() == pytest.approx(2 * 0.75)

    def test_with_timesteps(self):
        b = app().with_timesteps(7)
        assert b.timesteps == 7
        assert b.name == "app"

    def test_work_weights_come_from_profile(self, tiny):
        ctx = RunContext.create(tiny, seed=0)
        a = app(loops=[spec(imbalance="linear", imbalance_cv=0.3)])
        a.setup(ctx)
        (w,) = [i for i in a.encounters(0, ctx) if isinstance(i, TaskloopWork)]
        assert w.weights[-1] > w.weights[0]
