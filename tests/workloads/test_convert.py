"""Unit tests for the omp-for -> taskloop converter."""

import pytest

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.runtime.runtime import OpenMPRuntime
from repro.workloads.base import RegionSpec
from repro.workloads.convert import (
    ParallelFor,
    Program,
    Taskloop,
    convert_for_to_taskloop,
    program_to_application,
)


@pytest.fixture
def program():
    return Program(
        name="demo",
        regions=(RegionSpec("data", 32 * 1024 * 1024),),
        constructs=(
            ParallelFor(name="init", region="data", trip_count=4096, work_seconds=0.01),
            ParallelFor(
                name="stencil", region="data", trip_count=4096, work_seconds=0.02,
                mem_frac=0.6, pattern=AccessPattern.strided(0.8), reuse=0.4,
            ),
        ),
        timesteps=2,
    )


class TestConvert:
    def test_converts_all_fors(self, program):
        out = convert_for_to_taskloop(program, num_threads=64)
        assert out.is_taskloop_program()
        assert not program.is_taskloop_program()  # original untouched
        assert [c.name for c in out.constructs] == ["init", "stencil"]

    def test_num_tasks_sizing(self, program):
        out = convert_for_to_taskloop(program, num_threads=64, tasks_per_thread=2)
        assert all(c.num_tasks == 128 for c in out.constructs)

    def test_num_tasks_capped_by_trip_count(self):
        p = Program(
            name="small",
            regions=(RegionSpec("d", 1024 * 1024),),
            constructs=(ParallelFor(name="f", region="d", trip_count=10, work_seconds=0.01),),
        )
        out = convert_for_to_taskloop(p, num_threads=64)
        assert out.constructs[0].num_tasks == 10

    def test_workload_properties_preserved(self, program):
        out = convert_for_to_taskloop(program)
        stencil = out.constructs[1]
        assert stencil.mem_frac == 0.6
        assert stencil.pattern.blocked_fraction == 0.8
        assert stencil.reuse == 0.4

    def test_existing_taskloops_pass_through(self, program):
        once = convert_for_to_taskloop(program)
        twice = convert_for_to_taskloop(once)
        assert twice.constructs == once.constructs

    def test_validation(self, program):
        with pytest.raises(WorkloadError):
            convert_for_to_taskloop(program, num_threads=0)

    def test_parallel_for_validation(self):
        with pytest.raises(WorkloadError):
            ParallelFor(name="f", region="d", trip_count=0, work_seconds=0.01)


class TestLowering:
    def test_unconverted_program_rejected(self, program):
        with pytest.raises(WorkloadError):
            program_to_application(program)

    def test_lowered_app_runs(self, tiny, program):
        app = program_to_application(convert_for_to_taskloop(program, num_threads=4))
        result = OpenMPRuntime(tiny, scheduler="ilan", seed=0).run_application(app)
        assert len(result.taskloops) == 4  # 2 loops x 2 timesteps

    def test_lowered_fields(self, program):
        app = program_to_application(convert_for_to_taskloop(program, num_threads=8))
        assert app.name == "demo"
        assert [lp.name for lp in app.loops] == ["init", "stencil"]
        assert app.loops[0].total_iters == 4096

    def test_program_kind_predicates(self, program):
        assert program.is_worksharing_program()
        converted = convert_for_to_taskloop(program)
        assert converted.is_taskloop_program()
        mixed = Program(
            name="m",
            regions=program.regions,
            constructs=(program.constructs[0], converted.constructs[1]),
        )
        assert not mixed.is_worksharing_program()
        assert not mixed.is_taskloop_program()
