"""Legacy shim: this environment has no `wheel` package, so PEP 660
editable installs cannot build; `pip install -e .` falls back to
`setup.py develop` through this file. All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
