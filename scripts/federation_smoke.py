"""Federation smoke test: a seeded shard-kill scenario replayed twice.

Runs the same federated scenario — N shards behind the consistent-hash
router, one or more of them fated by a seeded
:class:`~repro.serve.federation.faults.ShardFaultPlan` to die mid-run —
twice from scratch, and asserts the recovery invariants:

* at least one shard actually died (the scenario exercised the path),
* job conservation holds on every shard:
  ``submitted == completed + failed + active + queued + evicted``,
* every submitted job reached a terminal state through the router
  (orphans of the dead shards were re-admitted elsewhere),
* zero leaked leases: after the drain no node on any shard — dead or
  alive — has an owner,
* per-shard strict FIFO: with one worker per shard, jobs start executing
  in exactly the order they entered that shard's queue (migration and
  adoption only ever touch the queue *tail*),
* the two invocations produce byte-identical canonical reports — every
  placement, crash point, requeue and final state is a pure function of
  the seeds.

Scenario shaping: ``--kill-at SHARD:PLACEMENTS`` (repeatable) schedules
an exact crash point on the logical clock — the named shard dies after
absorbing that many placements, overriding the probabilistic draw — and
``--join-at N`` admits one extra shard live, once the router's placement
counter reaches N (minimal ring remap; the joiner is covered by the same
conservation and FIFO checks, and by the byte-identity comparison).

The canonical report deliberately excludes wall-clock-dependent fields
(latencies, throughput, uptime).  Exits non-zero on violation; CI runs
this to keep the federated failure path exercised end-to-end.  Usage::

    PYTHONPATH=src python scripts/federation_smoke.py [--shards 3] \\
        [--jobs 18] [--fault-seed 11] [--kill-at shard-1:4] [--join-at 9]
"""

import argparse
import asyncio
import json
import sys

from repro.exp.cliopts import add_machine_argument, resolve_machine
from repro.exp.runner import ExperimentConfig
from repro.serve.federation import (
    FederationRouter,
    ShardFaultPlan,
    build_shard,
    build_shards,
)
from repro.serve.protocol import JobRequest


def parse_kill_at(specs: list[str] | None) -> dict[str, int]:
    """``shard-1:4`` → ``{"shard-1": 4}`` (placements on the shard's clock)."""
    scheduled: dict[str, int] = {}
    for spec in specs or []:
        shard_id, sep, point = spec.rpartition(":")
        if not sep or not shard_id or not point.isdigit():
            raise SystemExit(f"--kill-at wants SHARD:PLACEMENTS, got {spec!r}")
        scheduled[shard_id] = int(point)
    return scheduled


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


def _spy_on_starts(shards):
    """Record, per shard, the order jobs start executing (acquire a lease).

    The FIFO witness: with one worker per shard, the start order must be
    exactly the local admission order (local job ids are assigned as jobs
    enter a shard's queue, and eviction only removes the newest).
    """
    starts = {shard.shard_id: [] for shard in shards}
    _extend_spy(shards, starts)
    return starts


def _extend_spy(shards, starts):
    for shard in shards:
        starts.setdefault(shard.shard_id, [])
        arbiter = shard.service.arbiter
        real_acquire = arbiter.acquire

        async def acquire(job_id, nodes_wanted, preferred=None,
                          *, _sid=shard.shard_id, _real=real_acquire):
            starts[_sid].append(job_id)
            return await _real(job_id, nodes_wanted, preferred=preferred)

        arbiter.acquire = acquire


async def federation_run(args: argparse.Namespace) -> dict:
    """One full scenario; returns a canonical (wall-clock-free) report."""
    shards = build_shards(
        args.shards,
        lambda: resolve_machine(args.machine),
        config=ExperimentConfig(seeds=1, timesteps=args.timesteps,
                                with_noise=False, jobs=1, cache_dir=None),
        queue_capacity=max(args.jobs, 16),
        workers=1,  # one worker/shard keeps per-shard start order = FIFO
    )
    starts = _spy_on_starts(shards)
    plan = ShardFaultPlan(args.shard_crash, seed=args.fault_seed,
                          min_placements=2, max_placements=6,
                          scheduled=parse_kill_at(args.kill_at))
    router = FederationRouter(shards, seed=args.ring_seed,
                              shard_fault_plan=plan)
    await router.start()
    joined = False
    for i in range(args.jobs):
        if (args.join_at is not None and not joined
                and router.placements >= args.join_at):
            joiner = build_shard(
                f"shard-{args.shards}",
                lambda: resolve_machine(args.machine),
                config=ExperimentConfig(seeds=1, timesteps=args.timesteps,
                                        with_noise=False, jobs=1,
                                        cache_dir=None),
                queue_capacity=max(args.jobs, 16),
                workers=1,
            )
            _extend_spy([joiner], starts)
            await router.join_shard(joiner)
            joined = True
        await router.submit(
            JobRequest(benchmark=args.benchmark, timesteps=args.timesteps,
                       nodes=1, tenant=f"tenant-{i % 4}")
        )
    await router.drain()
    snapshot = router.metrics_snapshot()

    return {
        "decisions": plan.decisions(),
        "crashed": list(plan.crashed),
        "dead": snapshot["fleet"]["dead"],
        "alive": snapshot["fleet"]["alive"],
        "counters": {
            "placements": router.placements,
            "failover_placements": router.failover_placements,
            "shard_deaths": router.shard_deaths,
            "requeued_jobs": router.requeued_jobs,
            "rebalanced_tenants": router.rebalanced_tenants,
        },
        "job_states": snapshot["router"]["job_states"],
        "jobs": {
            fed_id: {
                "tenant": job["tenant"],
                "shard": job["shard"],
                "placements": job["placements"],
                "state": job["state"],
            }
            for fed_id, job in snapshot["jobs"].items()
        },
        "shard_jobs": {
            shard_id: {
                key: value
                for key, value in shard["jobs"].items()
                if key not in ("latency", "throughput_jps")  # wall-clock
            }
            for shard_id, shard in snapshot["shards"].items()
        },
        "leases": {
            shard_id: shard["nodes"]["leases"]
            for shard_id, shard in snapshot["shards"].items()
        },
        "starts": {sid: list(seq) for sid, seq in starts.items()},
    }


def verify(report: dict, label: str, args: argparse.Namespace,
           failures: list) -> None:
    check(report["counters"]["shard_deaths"] >= 1,
          f"{label}: the seeded plan killed at least one shard "
          f"({report['dead']})", failures)
    check(len(report["alive"]) >= 1,
          f"{label}: the fleet kept at least one live shard", failures)

    total = {"submitted": 0, "completed": 0, "failed": 0, "evicted": 0}
    conserved = True
    for shard_id, jobs in sorted(report["shard_jobs"].items()):
        if jobs["submitted"] != (jobs["completed"] + jobs["failed"]
                                 + jobs["active"] + jobs["queued"]
                                 + jobs["evicted"]):
            conserved = False
        for key in total:
            total[key] += jobs[key]
    check(conserved, f"{label}: per-shard conservation holds "
          f"(submitted == completed + failed + active + queued + evicted)",
          failures)

    states = report["job_states"]
    check(states["completed"] + states["failed"] == args.jobs,
          f"{label}: all {args.jobs} jobs terminal through the router "
          f"({states['completed']} completed, {states['failed']} failed)",
          failures)
    check(states["queued"] == states["running"] == 0,
          f"{label}: the federation converged (nothing in flight)", failures)

    moved = [j for j in report["jobs"].values() if len(j["placements"]) > 1]
    check(len(moved) == report["counters"]["requeued_jobs"] > 0,
          f"{label}: dead shards' jobs were re-admitted elsewhere "
          f"({len(moved)} requeued)", failures)
    check(all(j["shard"] not in report["dead"] for j in report["jobs"].values()),
          f"{label}: no job ended mapped to a dead shard", failures)

    leaked = [
        (shard_id, node)
        for shard_id, leases in report["leases"].items()
        for node, owner in leases.items()
        if owner is not None
    ]
    check(not leaked, f"{label}: zero leaked leases after drain "
          f"(checked {len(report['leases'])} shard lease maps)", failures)

    fifo = True
    for shard_id, seq in report["starts"].items():
        numbers = [int(job_id.split("-")[1]) for job_id in seq]
        if numbers != sorted(numbers):
            fifo = False
    check(fifo, f"{label}: per-shard strict FIFO held (start order == "
          "admission order on every shard)", failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=18)
    parser.add_argument("--benchmark", default="matmul")
    parser.add_argument("--timesteps", type=int, default=3)
    parser.add_argument("--shard-crash", type=float, default=0.6)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--ring-seed", type=int, default=3)
    parser.add_argument("--kill-at", action="append", default=None,
                        metavar="SHARD:PLACEMENTS",
                        help="schedule an exact crash: the named shard dies "
                        "after absorbing PLACEMENTS placements (repeatable; "
                        "overrides the probabilistic draw for that shard)")
    parser.add_argument("--join-at", type=int, default=None, metavar="N",
                        help="admit one extra shard live once the router's "
                        "placement counter reaches N")
    add_machine_argument(parser, default="small")
    args = parser.parse_args(argv)

    failures: list = []
    first = asyncio.run(federation_run(args))
    verify(first, "run 1", args, failures)
    second = asyncio.run(federation_run(args))
    verify(second, "run 2", args, failures)

    a = json.dumps(first, sort_keys=True).encode()
    b = json.dumps(second, sort_keys=True).encode()
    check(a == b, "the two seeded runs are byte-identical "
          f"({len(a)} bytes of canonical report)", failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nfederation smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
