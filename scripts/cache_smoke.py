"""End-to-end smoke test of the persistent run cache.

Runs a small campaign twice against the same cache directory and asserts

* the warm rerun re-simulates zero runs (pure cache hits), and
* it completes at least ``--min-speedup`` times faster than the cold run.

Exits non-zero on violation; CI runs this to keep the cache hit path
exercised end-to-end.  Usage::

    PYTHONPATH=src python scripts/cache_smoke.py [--seeds 2] [--jobs 2]
                                                 [--min-speedup 5]
"""

import argparse
import sys
import tempfile
import time

from repro.exp.cache import ResultCache
from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.presets import dual_socket_small

BENCHMARKS = ["matmul", "cg"]
SCHEDULERS = ["baseline", "ilan"]


def campaign(cache_dir: str, *, seeds: int, jobs: int) -> tuple[float, ResultCache]:
    """One full (benchmarks x schedulers x seeds) campaign; returns wall time."""
    runner = Runner(
        ExperimentConfig(seeds=seeds, timesteps=5, with_noise=True, jobs=jobs,
                         cache_dir=cache_dir),
        topology=dual_socket_small(),
    )
    t0 = time.perf_counter()
    runner.prefetch(BENCHMARKS, SCHEDULERS)
    return time.perf_counter() - t0, runner.cache


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    expected_runs = len(BENCHMARKS) * len(SCHEDULERS) * args.seeds
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache_dir:
        cold_time, cold_cache = campaign(cache_dir, seeds=args.seeds, jobs=args.jobs)
        print(f"cold: {cold_time:.3f}s  {cold_cache.stats}")
        if cold_cache.stats.stores != expected_runs:
            print(f"FAIL: cold run stored {cold_cache.stats.stores} runs, "
                  f"expected {expected_runs}")
            return 1
        warm_time, warm_cache = campaign(cache_dir, seeds=args.seeds, jobs=args.jobs)
        print(f"warm: {warm_time:.3f}s  {warm_cache.stats}")
        if warm_cache.stats.misses or warm_cache.stats.stores:
            print("FAIL: warm rerun re-simulated runs (expected pure cache hits)")
            return 1
        speedup = cold_time / warm_time if warm_time > 0 else float("inf")
        print(f"speedup: {speedup:.1f}x (required: >= {args.min_speedup:.1f}x)")
        if speedup < args.min_speedup:
            print("FAIL: cached rerun not fast enough")
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
