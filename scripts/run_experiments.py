"""Generate the EXPERIMENTS.md data: full campaign at paper parity.

Usage::

    PYTHONPATH=src python scripts/run_experiments.py [--seeds N] [--jobs N]
                                                     [--cache-dir DIR | --no-cache]
                                                     [--trace-out trace.json]

Runs are cached on disk keyed by their full configuration, so re-running
after an unrelated edit only re-simulates what actually changed; ``--jobs``
fans the independent runs out over worker processes.  Results are
byte-identical for any job count and cache state.

``--trace-out`` additionally executes one fully-traced run (by default the
first paper benchmark under ILAN) and writes it as a Chrome
``trace_event`` JSON file loadable in https://ui.perfetto.dev — the
interactive counterpart of the ASCII timelines.
"""
import argparse

from repro.bench.timers import now as wall_now
from repro.exp.cliopts import (add_campaign_arguments, add_journal_arguments,
                               config_from_args, journal_from_args)
from repro.exp.figures import figure2, figure3, figure4, figure5, figure6, table1
from repro.exp.journal import install_checkpoint_handlers
from repro.exp.persistence import results_to_dict, save_results
from repro.exp.report import (render_speedups, render_threads, render_overheads,
                              render_figure6, render_variability)
from repro.exp.runner import Runner, derive_run_seed
from repro.workloads.registry import PAPER_ORDER

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("seeds_positional", nargs="?", type=int, default=None,
                    metavar="seeds", help="repetitions per cell (paper: 30)")
add_campaign_arguments(parser)
add_journal_arguments(parser)
parser.add_argument("--out", default="experiments_data.json",
                    help="cell-summary JSON output path")
parser.add_argument("--trace-out", default=None, metavar="PATH",
                    help="also write one traced run as a Chrome trace_event "
                    "JSON file (open in ui.perfetto.dev)")
parser.add_argument("--trace-benchmark", default=PAPER_ORDER[0],
                    choices=PAPER_ORDER, help="benchmark of the traced run")
parser.add_argument("--trace-scheduler", default="ilan",
                    help="scheduler of the traced run")
args = parser.parse_args()

if args.seeds is None and args.seeds_positional is not None:
    args.seeds = args.seeds_positional
cfg = config_from_args(args, seeds_default=30)
if (args.journal or args.resume) and cfg.cache_dir is None:
    raise SystemExit("--journal/--resume require the run cache (committed "
                     "cells are reloaded from it on resume); drop --no-cache")
t0 = wall_now()
journal = journal_from_args(args)
if journal is not None:
    install_checkpoint_handlers(journal)
    if journal.committed_cells():
        print(f"resuming from {journal.path}: "
              f"{len(journal.committed_cells())} cell(s) already committed")
r = Runner(cfg, journal=journal)
print(f"campaign: seeds={cfg.seeds}, timesteps="
      f"{'model defaults (50)' if cfg.timesteps is None else cfg.timesteps}, "
      f"noise {'on' if cfg.with_noise else 'off'}, jobs={cfg.jobs}, "
      f"cache={'off' if cfg.cache_dir is None else cfg.cache_dir}")
# one fan-out for every cell any figure needs, before any rendering
r.prefetch(PAPER_ORDER, ["baseline", "ilan", "ilan-nomold", "worksharing"])
print()
print(render_speedups("Figure 2: ILAN vs baseline", figure2(r)))
print()
print(render_threads("Figure 3: weighted average threads selected by ILAN", figure3(r)))
print()
print(render_speedups("Figure 4: ILAN without moldability vs baseline", figure4(r)))
print()
print(render_overheads("Figure 5: accumulated scheduling overhead", figure5(r)))
print()
print(render_figure6(figure6(r)))
print()
print(render_variability("Table 1: execution-time standard deviation", table1(r)))
save_results(args.out, results_to_dict(r))
if r.cache is not None:
    st = r.cache.stats
    print(f"\nrun cache: {st.hits} hit(s), {st.misses} miss(es), {st.stores} stored")
if args.trace_out:
    from repro.runtime.runtime import OpenMPRuntime
    from repro.sim.chrome_trace import write_chrome_trace
    from repro.exp.runner import default_noise
    from repro.workloads.registry import make_benchmark

    bench, sched = args.trace_benchmark, args.trace_scheduler
    rt = OpenMPRuntime(r.topology, scheduler=sched,
                       seed=derive_run_seed(bench, sched, 0),
                       noise=default_noise() if cfg.with_noise else None,
                       trace=True)
    rt.run_application(make_benchmark(bench, timesteps=cfg.timesteps))
    out = write_chrome_trace(args.trace_out, rt.last_ctx.trace, r.topology)
    print(f"chrome trace of ({bench}, {sched}) written to {out}")
if journal is not None:
    journal.checkpoint("complete")
    journal.close()
print(f"wall time: {wall_now()-t0:.0f}s; cell summaries saved to {args.out}")
