"""Generate the EXPERIMENTS.md data: full campaign at paper parity."""
import sys, time
from repro.exp.runner import Runner, ExperimentConfig
from repro.exp.figures import figure2, figure3, figure4, figure5, figure6, table1
from repro.exp.report import (render_speedups, render_threads, render_overheads,
                              render_figure6, render_variability)
from repro.exp.persistence import results_to_dict, save_results

seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 30
t0 = time.time()
r = Runner(ExperimentConfig(seeds=seeds, timesteps=None, with_noise=True))
print(f"campaign: seeds={seeds}, timesteps=model defaults (50), noise on")
print()
print(render_speedups("Figure 2: ILAN vs baseline", figure2(r)))
print()
print(render_threads("Figure 3: weighted average threads selected by ILAN", figure3(r)))
print()
print(render_speedups("Figure 4: ILAN without moldability vs baseline", figure4(r)))
print()
print(render_overheads("Figure 5: accumulated scheduling overhead", figure5(r)))
print()
print(render_figure6(figure6(r)))
print()
print(render_variability("Table 1: execution-time standard deviation", table1(r)))
save_results("experiments_data.json", results_to_dict(r))
print(f"\nwall time: {time.time()-t0:.0f}s; cell summaries saved to experiments_data.json")
