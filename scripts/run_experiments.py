"""Generate the EXPERIMENTS.md data: full campaign at paper parity.

Usage::

    PYTHONPATH=src python scripts/run_experiments.py [--seeds N] [--jobs N]
                                                     [--cache-dir DIR | --no-cache]

Runs are cached on disk keyed by their full configuration, so re-running
after an unrelated edit only re-simulates what actually changed; ``--jobs``
fans the independent runs out over worker processes.  Results are
byte-identical for any job count and cache state.
"""
import argparse
import time

from repro.exp.cache import default_cache_dir
from repro.exp.figures import figure2, figure3, figure4, figure5, figure6, table1
from repro.exp.persistence import results_to_dict, save_results
from repro.exp.report import (render_speedups, render_threads, render_overheads,
                              render_figure6, render_variability)
from repro.exp.runner import Runner, ExperimentConfig
from repro.workloads.registry import PAPER_ORDER

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("seeds", nargs="?", type=int, default=30,
                    help="repetitions per cell (paper: 30)")
parser.add_argument("--seeds", dest="seeds_flag", type=int, default=None,
                    help="repetitions per cell (flag form)")
parser.add_argument("--jobs", type=int, default=1, help="worker processes")
parser.add_argument("--cache-dir", default=None,
                    help=f"run-cache directory (default: {default_cache_dir()})")
parser.add_argument("--no-cache", action="store_true",
                    help="re-simulate everything, persist nothing")
parser.add_argument("--out", default="experiments_data.json",
                    help="cell-summary JSON output path")
args = parser.parse_args()

seeds = args.seeds_flag if args.seeds_flag is not None else args.seeds
cache_dir = None if args.no_cache else str(args.cache_dir or default_cache_dir())
t0 = time.time()
r = Runner(ExperimentConfig(seeds=seeds, timesteps=None, with_noise=True,
                            jobs=args.jobs, cache_dir=cache_dir))
print(f"campaign: seeds={seeds}, timesteps=model defaults (50), noise on, "
      f"jobs={args.jobs}, cache={'off' if cache_dir is None else cache_dir}")
# one fan-out for every cell any figure needs, before any rendering
r.prefetch(PAPER_ORDER, ["baseline", "ilan", "ilan-nomold", "worksharing"])
print()
print(render_speedups("Figure 2: ILAN vs baseline", figure2(r)))
print()
print(render_threads("Figure 3: weighted average threads selected by ILAN", figure3(r)))
print()
print(render_speedups("Figure 4: ILAN without moldability vs baseline", figure4(r)))
print()
print(render_overheads("Figure 5: accumulated scheduling overhead", figure5(r)))
print()
print(render_figure6(figure6(r)))
print()
print(render_variability("Table 1: execution-time standard deviation", table1(r)))
save_results(args.out, results_to_dict(r))
if r.cache is not None:
    st = r.cache.stats
    print(f"\nrun cache: {st.hits} hit(s), {st.misses} miss(es), {st.stores} stored")
print(f"wall time: {time.time()-t0:.0f}s; cell summaries saved to {args.out}")
