"""Chaos smoke test: a seeded fault plan replayed twice over the wire.

Runs the same chaos scenario — worker crashes, transient runner errors,
deadline hangs and client disconnects, all drawn from one seeded
:class:`~repro.serve.faults.FaultPlan` — against two fresh service
instances and asserts that

* every submitted job reaches a terminal state (the service converges),
* conservation holds: ``submitted == completed + failed + active + queued``,
* every crashed job's lease was reclaimed and all leases are free after
  the drain (no leaks),
* every injected fault is visible in the recovery counters, and
* the two invocations produce byte-identical canonical reports (the
  fault plan, the recovery, and the results are all deterministic).

Exits non-zero on violation; CI runs this to keep the failure path
exercised end-to-end.  Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--jobs 8] [--fault-seed 7]
"""

import argparse
import asyncio
import json
import sys

from repro.exp.cliopts import add_machine_argument, resolve_machine
from repro.exp.runner import ExperimentConfig
from repro.serve.client import ServiceClient
from repro.serve.faults import FaultKind, FaultPlan
from repro.serve.protocol import JobRequest
from repro.serve.server import SchedulingService

TIMEOUT = 120


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


async def chaos_run(args: argparse.Namespace) -> dict:
    """One full scenario; returns a canonical (wall-clock-free) report."""
    plan = FaultPlan(
        {
            FaultKind.WORKER_CRASH: 0.3,
            FaultKind.TRANSIENT_ERROR: 0.25,
            FaultKind.DEADLINE_HANG: 0.15,
            FaultKind.CLIENT_DISCONNECT: 0.15,
        },
        seed=args.fault_seed,
        fault_attempts=1,
    )
    topology = resolve_machine(args.machine)
    # workers=1 keeps the lease-grant order deterministic for the replay
    service = SchedulingService(
        topology,
        config=ExperimentConfig(seeds=1, timesteps=args.timesteps,
                                with_noise=False, jobs=1, cache_dir=None),
        workers=1,
        fault_plan=plan,
        max_attempts=3,
    )
    host, port = await service.start("127.0.0.1", 0)

    jobs, disconnects = [], 0
    async with await ServiceClient.connect(host, port) as cli:
        job_ids = [
            await cli.submit(
                JobRequest(benchmark=args.benchmark, timesteps=args.timesteps,
                           nodes=1, tenant=f"tenant-{i % 2}", deadline_s=1.0)
            )
            for i in range(args.jobs)
        ]
        for job_id in job_ids:
            if plan.should_inject(job_id, FaultKind.CLIENT_DISCONNECT, 0):
                plan.record_injection(FaultKind.CLIENT_DISCONNECT)
                await cli.reconnect()  # drop mid-wait, dial again, resume
                disconnects += 1
            jobs.append(await cli.wait(job_id, timeout=TIMEOUT))
    async with await ServiceClient.connect(host, port) as cli:
        snapshot = await asyncio.wait_for(cli.drain(), timeout=TIMEOUT)

    return {
        "decisions": plan.decisions(),
        "injected": dict(sorted(plan.injected.items())),
        "disconnects": disconnects,
        "jobs": {
            job["job_id"]: {
                "state": job["state"],
                "attempts": job["attempts"],
                "errors": [a["error"] for a in job["attempt_history"]],
                "error": job["error"],
                "lease_nodes": job["lease_nodes"],
            }
            for job in jobs
        },
        "counters": {
            k: snapshot["jobs"][k]
            for k in ("submitted", "completed", "failed", "active", "queued",
                      "rejected_total")
        },
        "recovery": snapshot["recovery"],
        "leases": snapshot["nodes"]["leases"],
        "waiting": snapshot["nodes"]["waiting_for_lease"],
        "draining": snapshot["service"]["draining"],
    }


def verify(report: dict, label: str, args: argparse.Namespace,
           failures: list) -> None:
    jobs = report["counters"]
    check(jobs["submitted"] == args.jobs,
          f"{label}: all {args.jobs} jobs were admitted", failures)
    check(
        jobs["submitted"] == jobs["completed"] + jobs["failed"]
        + jobs["active"] + jobs["queued"],
        f"{label}: conservation holds "
        f"({jobs['completed']} completed + {jobs['failed']} failed)",
        failures,
    )
    check((jobs["active"], jobs["queued"]) == (0, 0),
          f"{label}: the service converged (nothing in flight)", failures)
    terminal = {j["state"] for j in report["jobs"].values()}
    check(terminal <= {"completed", "failed"},
          f"{label}: every job is terminal (states: {sorted(terminal)})",
          failures)
    check(all(owner is None for owner in report["leases"].values()),
          f"{label}: zero leaked leases after drain", failures)
    check(report["waiting"] == [],
          f"{label}: nobody left waiting for a lease", failures)

    rec = report["recovery"]
    injected = report["injected"]
    check(sum(injected.values()) > 0,
          f"{label}: the seeded plan injected faults ({injected})", failures)
    check(rec["faults_injected"].get("crash", 0)
          == injected.get("crash", 0) > 0,
          f"{label}: worker crashes visible in metrics "
          f"({rec['faults_injected'].get('crash', 0)})", failures)
    check(rec["leases_reclaimed"] == injected.get("crash", 0),
          f"{label}: every crashed job's lease was reclaimed "
          f"({rec['leases_reclaimed']})", failures)
    check(rec["retried"] == injected.get("transient", 0),
          f"{label}: every transient error was retried ({rec['retried']})",
          failures)
    check(rec["deadline_exceeded"] == injected.get("deadline", 0),
          f"{label}: every deadline hang was cancelled "
          f"({rec['deadline_exceeded']})", failures)
    check(report["disconnects"] == injected.get("disconnect", 0),
          f"{label}: client disconnects injected and survived "
          f"({report['disconnects']})", failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--benchmark", default="matmul")
    parser.add_argument("--timesteps", type=int, default=3)
    parser.add_argument("--fault-seed", type=int, default=1)
    add_machine_argument(parser, default="small")
    args = parser.parse_args(argv)

    failures: list = []
    first = asyncio.run(chaos_run(args))
    verify(first, "run 1", args, failures)
    second = asyncio.run(chaos_run(args))
    verify(second, "run 2", args, failures)

    a = json.dumps(first, sort_keys=True).encode()
    b = json.dumps(second, sort_keys=True).encode()
    check(a == b, "the two seeded runs are byte-identical "
          f"({len(a)} bytes of canonical report)", failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nchaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
