"""Asymmetry smoke test: seeded misbehavior timelines end-to-end.

Runs campaigns under the two tuned asymmetry patterns (a persistent
single-node DVFS step and transient core-offline outages) and asserts

* determinism: replaying the same (seed, asym-seed) pair is
  byte-identical, down to per-taskloop elapsed times and the timeline's
  episode counters,
* engine equivalence: the reference and incremental engines produce
  byte-identical results under live speed mutation and core offlining,
* the timeline actually fired (episodes observed, speeds mutated), and
* adaptation pays: on the pinned seeds, ILAN with drift re-exploration
  ("ilan-adaptive") re-explores at least once and beats frozen-PTT ILAN
  on makespan under both patterns.

Exits non-zero on violation; CI runs this to keep the dynamic-asymmetry
path exercised end-to-end.  Usage::

    PYTHONPATH=src python scripts/asym_smoke.py [--timesteps 60]
"""

import argparse
import json
import sys

from repro.interference.timeline import AsymmetrySpec
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import dual_socket_small
from repro.workloads.synthetic import make_synthetic

# the tuned patterns committed in EXPERIMENTS.md, with the seed each
# smoke assertion is pinned to (deterministic, so stable in CI)
STEP_SPEC = AsymmetrySpec(dvfs_interval=0.05, dvfs_duration=1000.0,
                          dvfs_low=0.15, dvfs_high=0.2, dvfs_max_nodes=1)
STEP_SEED = 0
OFFLINE_SPEC = AsymmetrySpec(offline_interval=0.3, offline_duration=1.0,
                             max_offline_fraction=0.2)
OFFLINE_SEED = 3


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


def run_campaign(scheduler: str, spec: AsymmetrySpec, seed: int,
                 timesteps: int, engine: str = "reference") -> dict:
    """One asymmetric campaign; returns a canonical report."""
    app = make_synthetic(work_seconds=0.05, mem_frac=0.6, gamma=0.8,
                         num_tasks=32, total_iters=128, region_mib=32,
                         timesteps=timesteps)
    runtime = OpenMPRuntime(dual_socket_small(), scheduler, seed=seed,
                            engine=engine, asym=spec, asym_seed=100 + seed)
    result = runtime.run_application(app)
    timeline = runtime.last_ctx.asym
    reexplorations = 0
    if hasattr(runtime.scheduler, "_controllers"):
        reexplorations = sum(getattr(c, "reexplorations", 0)
                             for c in runtime.scheduler._controllers.values())
    return {
        "total_time": result.total_time.hex(),
        "taskloops": [tl.elapsed.hex() for tl in result.taskloops],
        "episodes": {
            "dvfs": timeline.dvfs_episodes,
            "throttle": timeline.throttle_episodes,
            "cotenant": timeline.cotenant_episodes,
            "offline": timeline.offline_episodes,
        },
        "reexplorations": reexplorations,
    }


def verify_pattern(label: str, spec: AsymmetrySpec, seed: int,
                   timesteps: int, failures: list) -> None:
    frozen = run_campaign("ilan", spec, seed, timesteps)
    adaptive = run_campaign("ilan-adaptive", spec, seed, timesteps)

    replay = run_campaign("ilan-adaptive", spec, seed, timesteps)
    a = json.dumps(adaptive, sort_keys=True).encode()
    b = json.dumps(replay, sort_keys=True).encode()
    check(a == b, f"{label}: same-seed replay is byte-identical "
          f"({len(a)} bytes of canonical report)", failures)

    incremental = run_campaign("ilan-adaptive", spec, seed, timesteps,
                               engine="incremental")
    check(json.dumps(incremental, sort_keys=True).encode() == a,
          f"{label}: reference and incremental engines agree bit-for-bit",
          failures)

    fired = sum(adaptive["episodes"].values())
    check(fired >= 1, f"{label}: the timeline fired ({adaptive['episodes']})",
          failures)
    check(adaptive["reexplorations"] >= 1,
          f"{label}: drift re-exploration triggered "
          f"({adaptive['reexplorations']}x)", failures)
    check(frozen["reexplorations"] == 0,
          f"{label}: frozen-PTT ILAN never re-explores", failures)

    t_frozen = float.fromhex(frozen["total_time"])
    t_adaptive = float.fromhex(adaptive["total_time"])
    gain = 100.0 * (t_frozen - t_adaptive) / t_frozen
    check(t_adaptive < t_frozen,
          f"{label}: adaptive beats frozen on makespan "
          f"({t_adaptive:.4f} vs {t_frozen:.4f}, {gain:+.1f}%)", failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timesteps", type=int, default=60)
    args = parser.parse_args(argv)

    failures: list = []
    verify_pattern("dvfs-step", STEP_SPEC, STEP_SEED, args.timesteps,
                   failures)
    verify_pattern("core-offline", OFFLINE_SPEC, OFFLINE_SEED,
                   args.timesteps, failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nasym smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
