"""Assemble EXPERIMENTS.md from the campaign output (developer tool).

Usage: python scripts/make_experiments_md.py /tmp/experiments_full.txt
"""

import sys
from pathlib import Path

from repro.ioutil import atomic_write

HEADER = """\
# EXPERIMENTS — paper vs. reproduction

Every figure and table of the ILAN paper's evaluation (Section 5),
regenerated on the simulated platform.  Methodology mirrors the paper:
the 64-core Zen 4 machine model (8 NUMA nodes x 8 cores), the models'
default 50 outer iterations, mild external system noise enabled.  The
tables below are a 4-seed campaign (deterministic seeds 0-3); rerun at
the paper's 30 repetitions with `python scripts/run_experiments.py 30`
(the shapes are stable across seed counts — the benchmark harness
asserts them at every scale).

**Scale-down vs the paper** (simulation budget; configurable):

| dimension | paper | reproduction default |
|---|---|---|
| outer iterations | 200 (NPB-FT raised 25 -> 200; LULESH 200; Matmul 200) | 50 (`REPRO_ITERS`) |
| problem sizes | NPB class D, LULESH 400^3, Matmul 3500 | calibrated workload models (DESIGN.md section 6) |
| repetitions | 30 | 4 in the tables below; benches default to 10 (`REPRO_SEEDS`, `REPRO_FULL=1`) |

Absolute times are simulation times and do not transfer to the authors'
testbed; the claims below are about *shape* (who wins, by roughly how
much, where the crossovers sit).

## Headline comparison

| artefact | paper result | reproduced result | shape match |
|---|---|---|---|
| Fig 2 average | ILAN +13.2% over baseline | {fig2_avg} | yes — same magnitude |
| Fig 2 maximum | +45.8% on SP | {fig2_sp} on SP (the largest by far) | yes |
| Fig 2 worst case | slight loss on Matmul | {fig2_matmul} on Matmul (the only loss) | yes |
| Fig 3 | CG ~25 of 64 cores; FT/BT/Matmul = 64 | CG {fig3_cg}, SP {fig3_sp}; others >= 58 | yes — CG/SP molded, rest full width |
| Fig 4 average | +7.9% without moldability | {fig4_avg} | yes |
| Fig 4 CG | -8.6% (flips negative) | {fig4_cg} (flips negative) | yes — sign reproduced, smaller magnitude |
| Fig 4 SP | loses most of its gain | {fig4_sp} (negative) | yes |
| Fig 5 | ILAN overhead lower in 4/7, biggest cut in CG, higher for Matmul | lower in {fig5_lower}/7; CG {fig5_cg}; BT above 1 | yes — same direction, more benchmarks below 1 |
| Fig 6 | work-sharing wins FT; ILAN wins CG/SP | WS {fig6_ws_ft} vs ILAN {fig6_ilan_ft} on FT; WS {fig6_ws_cg} on CG, {fig6_ws_sp} on SP | yes |
| Table 1 | ILAN variance lower in 3/7 (FT, LU, SP) | lower in {t1_lower}/7 (CG, SP, ...) | yes — same count; SP's large reduction reproduced |

## Measured tables (4-seed campaign, 50 timesteps, noise on)

```
{tables}
```

## Reading guide / deviations worth knowing

- **CG** reproduces at a larger ILAN gain than the paper (+11% vs +8%) and
  a shallower no-moldability loss (-1% vs -8.6%).  Both sit on the modelled
  balance between contention relief and imbalance; the paper's signs and
  ordering are preserved.
- **BT** reproduces at ~+11% vs the paper's +16.9%: the locality share of
  the model was calibrated conservatively (see DESIGN.md calibration
  notes) to keep FT/LU/LULESH in range simultaneously.
- **SP** overshoots slightly (~+57% vs +45.8%) — it is the benchmark whose
  gain is most sensitive to the contention exponent; the qualitative
  claims (largest win, mostly gone without moldability, work-sharing
  collapses) all hold.
- **Table 1 variability**: the reproduction's baseline variance comes from
  random placement/stealing plus injected noise; ILAN's determinism cuts
  it on the molded benchmarks exactly as in the paper (SP's std drops by
  ~9x here vs ~2x in the paper).  Which non-molded benchmarks flip is
  noise-dominated, as the paper itself observes for its BT outlier.

## Regenerating

```bash
pytest benchmarks/ --benchmark-only -s          # all artefacts, reduced seeds
REPRO_FULL=1 pytest benchmarks/ --benchmark-only -s   # paper parity (slow)
repro-exp all --seeds 30                        # or via the CLI
python scripts/run_experiments.py 30            # this file's tables + JSON
```

The last command also dumps cell-level summaries (means, stds, weighted
thread counts per benchmark x scheduler) to `experiments_data.json`.

## Per-experiment index

| id | bench target | workload | modules exercised |
|---|---|---|---|
| Fig 2 | `benchmarks/bench_fig2_overall_speedup.py` | all seven models | core.scheduler + runtime + memory + interference |
| Fig 3 | `benchmarks/bench_fig3_thread_selection.py` | all seven | core.moldability / core.selection (Algorithm 1) |
| Fig 4 | `benchmarks/bench_fig4_no_moldability.py` | all seven | core.scheduler.IlanNoMoldScheduler |
| Fig 5 | `benchmarks/bench_fig5_overhead.py` | all seven | runtime.overhead accounting |
| Fig 6 | `benchmarks/bench_fig6_worksharing.py` | all seven | runtime.schedulers.worksharing |
| Table 1 | `benchmarks/bench_table1_variability.py` | all seven | interference.noise + determinism of core.distribution |
| Ablations | `benchmarks/bench_ablation_*.py` | CG / SP / FT / synthetic | strict fraction, granularity g, gamma, page placement |
| Extensions | `benchmarks/bench_ext_*.py` | Matmul / SP / BT / synthetic | counters, energy objectives, affinity clause, proc_bind, amortization |
"""


def grab(lines, start, n):
    i = next(idx for idx, l in enumerate(lines) if l.startswith(start))
    return lines[i : i + n]


def main(path: str) -> None:
    text = Path(path).read_text()
    lines = text.splitlines()

    def row_value(section_start, bench, col):
        sec = [l for l in lines[lines.index(section_start):] if l.strip()]
        for l in sec:
            if l.startswith(bench):
                return l.split()[col]
        raise SystemExit(f"row {bench} not found after {section_start}")

    # pull headline numbers out of the rendered tables
    fig2_start = next(l for l in lines if l.startswith(("Figure 2", "FIG2")))
    fig4_start = next(l for l in lines if l.startswith(("Figure 4", "FIG4")))
    fig5_start = next(l for l in lines if l.startswith(("Figure 5", "FIG5")))
    fig6_start = next(l for l in lines if l.startswith("Figure 6"))
    t1_start = next(l for l in lines if l.startswith(("Table 1", "TABLE1")))
    fig3_start = next(l for l in lines if l.startswith(("Figure 3", "FIG3")))

    def section(start):
        i = lines.index(start)
        j = i + 1
        while j < len(lines) and lines[j].strip():
            j += 1
        return lines[i:j]

    def bench_col(start, bench, col):
        for l in section(start):
            if l.split() and l.split()[0] == bench:
                return l.split()[col]
        raise SystemExit(f"{bench} not in section {start!r}")

    def pct(start, bench):
        return bench_col(start, bench, 4)

    fig5_lower = next(
        l for l in lines if l.startswith("ILAN overhead lower in")
    ).split()[4].split("/")[0]
    t1_lower = next(
        l for l in lines if l.startswith("ILAN variance lower in")
    ).split()[4].split("/")[0]

    values = {
        "fig2_avg": next(l for l in section(fig2_start) if l.startswith("geo-mean")).split()[-1] + "%",
        "fig2_sp": pct(fig2_start, "sp") + "%",
        "fig2_matmul": pct(fig2_start, "matmul") + "%",
        "fig3_cg": bench_col(fig3_start, "cg", 1),
        "fig3_sp": bench_col(fig3_start, "sp", 1),
        "fig4_avg": next(l for l in section(fig4_start) if l.startswith("geo-mean")).split()[-1] + "%",
        "fig4_cg": pct(fig4_start, "cg") + "%",
        "fig4_sp": pct(fig4_start, "sp") + "%",
        "fig5_lower": fig5_lower,
        "fig5_cg": bench_col(fig5_start, "cg", 3),
        "fig6_ilan_ft": bench_col(fig6_start, "ft", 1),
        "fig6_ws_ft": bench_col(fig6_start, "ft", 2),
        "fig6_ws_cg": bench_col(fig6_start, "cg", 2),
        "fig6_ws_sp": bench_col(fig6_start, "sp", 2),
        "t1_lower": t1_lower,
        "tables": text.strip(),
    }
    out = HEADER.format(**values)
    atomic_write(Path("EXPERIMENTS.md"), out)
    print(f"EXPERIMENTS.md written ({len(out.splitlines())} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "/tmp/experiments_full.txt")
