"""Asymmetry sweep: ILAN with re-exploration vs frozen-PTT ILAN vs baselines.

Runs the synthetic campaign under the two tuned asymmetry patterns —
a persistent single-node DVFS step and transient core-offline outages —
for every scheduler, over a fixed seed range, and emits the markdown
section committed to EXPERIMENTS.md.  All schedulers in a given (pattern,
seed) cell see the *same* timeline (same ``asym_seed``), so the
comparison is fair: only the scheduling policy differs.

Usage::

    PYTHONPATH=src python scripts/asym_sweep.py             # print section
    PYTHONPATH=src python scripts/asym_sweep.py --write     # update EXPERIMENTS.md
    PYTHONPATH=src python scripts/asym_sweep.py --seeds 4   # quicker look
"""

import argparse
import sys
from pathlib import Path

from repro.interference.timeline import AsymmetrySpec
from repro.ioutil import atomic_write
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import dual_socket_small
from repro.workloads.synthetic import make_synthetic

PATTERNS = {
    # a core's DVFS governor drops one node to a deep P-state and leaves it
    # there: the canonical persistent regime shift re-exploration targets
    "dvfs-step": AsymmetrySpec(dvfs_interval=0.05, dvfs_duration=1000.0,
                               dvfs_low=0.15, dvfs_high=0.2,
                               dvfs_max_nodes=1),
    # cores drop out for ~1s outages (hotplug, kernel isolation, crashes);
    # up to 20% of the machine may be gone at once
    "core-offline": AsymmetrySpec(offline_interval=0.3, offline_duration=1.0,
                                  max_offline_fraction=0.2),
}
SCHEDULERS = ("baseline", "worksharing", "ilan-nomold", "ilan",
              "ilan-adaptive")
BEGIN = "<!-- asym-sweep:begin -->"
END = "<!-- asym-sweep:end -->"


def run_one(scheduler: str, spec: AsymmetrySpec, seed: int,
            timesteps: int) -> tuple[float, int]:
    app = make_synthetic(work_seconds=0.05, mem_frac=0.6, gamma=0.8,
                         num_tasks=32, total_iters=128, region_mib=32,
                         timesteps=timesteps)
    runtime = OpenMPRuntime(dual_socket_small(), scheduler, seed=seed,
                            asym=spec, asym_seed=100 + seed)
    result = runtime.run_application(app)
    reexplorations = 0
    if hasattr(runtime.scheduler, "_controllers"):
        reexplorations = sum(getattr(c, "reexplorations", 0)
                             for c in runtime.scheduler._controllers.values())
    return result.total_time, reexplorations


def sweep(seeds: int, timesteps: int) -> str:
    lines = [
        BEGIN,
        "## Asymmetry sweep — re-exploration under dynamic misbehavior",
        "",
        "Synthetic campaign (32 tasks, %d timesteps, dual-socket 16-core"
        % timesteps,
        "machine) under seeded speed-misbehavior timelines, %d seeds per"
        % seeds,
        "cell; every scheduler in a cell replays the *same* timeline.",
        "`ilan` trusts its settled PTT forever; `ilan-adaptive` invalidates",
        "and re-explores when measured times drift >30% from the table for",
        "two consecutive settled encounters.",
        "",
    ]
    summary = {}
    for pattern, spec in PATTERNS.items():
        lines += [
            f"### {pattern} (`{spec.describe()}`)",
            "",
            "| scheduler | mean makespan [s] | vs frozen ilan |",
            "|---|---|---|",
        ]
        means = {}
        reex_total = 0
        for scheduler in SCHEDULERS:
            total = 0.0
            for seed in range(seeds):
                elapsed, reexplorations = run_one(scheduler, spec, seed,
                                                  timesteps)
                total += elapsed
                if scheduler == "ilan-adaptive":
                    reex_total += reexplorations
            means[scheduler] = total / seeds
            print(f"[{pattern}] {scheduler}: mean {means[scheduler]:.4f}s",
                  file=sys.stderr)
        frozen = means["ilan"]
        for scheduler in SCHEDULERS:
            gain = 100.0 * (frozen - means[scheduler]) / frozen
            mark = " **" if scheduler == "ilan-adaptive" else " "
            lines.append(f"| {scheduler} | {means[scheduler]:.4f} |"
                         f"{mark}{gain:+.1f}%{mark.strip()} |")
        gain = 100.0 * (frozen - means["ilan-adaptive"]) / frozen
        summary[pattern] = gain
        lines += [
            "",
            f"Adaptive re-exploration fired {reex_total} times across the "
            f"{seeds} seeds and beats frozen-PTT ILAN by "
            f"**{gain:+.1f}%** mean makespan.",
            "",
        ]
    lines += [
        "Regenerate with `PYTHONPATH=src python scripts/asym_sweep.py "
        "--write`; `scripts/asym_smoke.py` asserts the gap in CI on "
        "pinned seeds.",
        END,
    ]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--timesteps", type=int, default=60)
    parser.add_argument("--write", action="store_true",
                        help="splice the section into EXPERIMENTS.md")
    args = parser.parse_args(argv)

    section = sweep(args.seeds, args.timesteps)
    if not args.write:
        print(section)
        return 0

    path = Path("EXPERIMENTS.md")
    text = path.read_text()
    if BEGIN in text:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
        text = head + section.rstrip("\n") + tail
    else:
        text = text.rstrip("\n") + "\n\n" + section
    atomic_write(path, text)
    print(f"EXPERIMENTS.md updated ({len(section.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
