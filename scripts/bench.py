"""Benchmark harness CLI: measure, record, and gate simulator performance.

Usage::

    PYTHONPATH=src python scripts/bench.py [--quick] [--seed N]
                                           [--out BENCH_6.json]
                                           [--compare BENCH_prev.json]
                                           [--max-regression 0.25]

Measures simulator throughput (events/sec, reference vs. incremental
engine) on three campaign sizes, campaign wall time cold vs. warm cache,
and service latency percentiles from a short load-generator run, and
emits one validated ``BENCH_<n>.json`` document (see
:mod:`repro.bench.schema`).

``--quick`` runs the same campaign shapes with fewer repeats — fast
enough for a CI smoke job, comparable with committed full documents.

``--compare PREV`` gates the fresh measurement against a previous
document: exit 0 when within the regression budget, 1 on regression, 2
on a malformed document or bad invocation.  On different hardware than
the baseline, only the engine speedup ratios are gated (they are
machine-independent); see :mod:`repro.bench.compare`.
"""
import argparse
import json
import sys
from pathlib import Path

from repro.bench.compare import compare_documents, load_document
from repro.bench.harness import run_benchmarks
from repro.errors import BenchError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: same campaign shapes, fewer repeats",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the measured BENCH document to this path",
    )
    parser.add_argument(
        "--compare", metavar="PREV", default=None,
        help="gate the fresh measurement against a previous BENCH document",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="relative regression budget for --compare (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        doc = run_benchmarks(
            mode="quick" if args.quick else "full", seed=args.seed, log=print
        )
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    if args.compare:
        try:
            previous = load_document(args.compare)
            report = compare_documents(
                previous, doc, max_regression=args.max_regression
            )
        except BenchError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        for line in report.lines():
            print(line)
        return 0 if report.ok else 1

    if not args.out:
        print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
