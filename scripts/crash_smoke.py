"""Crash smoke test: SIGKILL a journaled campaign, resume, diff golden.

The durability contract under test (DESIGN.md §5c): a campaign run with
``--journal`` can be SIGKILLed at *any* point and resumed with
``--resume`` to produce byte-identical results.  This script proves it
end-to-end against live subprocesses:

1. a golden, uninterrupted journaled campaign records the results JSON
   and the journal's record count ``N``;
2. at ``--crash-points`` distinct seeded crash points ``n <= N``, a fresh
   campaign is started with ``REPRO_CRASH_AFTER_JOURNAL_RECORDS=n`` — the
   process SIGKILLs itself the instant the n-th journal record hits the
   disk — then resumed; the resumed results must be byte-identical to
   golden and the run cache must hold zero quarantined files;
3. a corruption scenario flips one byte of a committed cache entry before
   the resume: the entry must be quarantined (exactly one file, kept for
   forensics, never served) and transparently recomputed — results again
   byte-identical.

Exits non-zero on violation; CI runs this to keep the crash path
exercised.  Usage::

    PYTHONPATH=src python scripts/crash_smoke.py [--crash-points 3] [--seed 0]
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.exp.journal import read_records

CAMPAIGN = ["fig2", "--machine", "tiny", "--seeds", "2", "--timesteps", "2",
            "--benchmarks", "matmul", "cg"]
TIMEOUT = 300


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


def run_campaign(workdir: Path, *, crash_after: int | None = None,
                 resume: bool = False) -> subprocess.CompletedProcess:
    """One campaign subprocess against ``workdir``'s cache + journal."""
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_CACHE_DIR=str(workdir / "cache"))
    env.pop("REPRO_CRASH_AFTER_JOURNAL_RECORDS", None)
    if crash_after is not None:
        env["REPRO_CRASH_AFTER_JOURNAL_RECORDS"] = str(crash_after)
    journal_flag = "--resume" if resume else "--journal"
    cmd = [sys.executable, "-m", "repro.exp.cli", *CAMPAIGN,
           journal_flag, str(workdir / "campaign.wal"),
           "--save", str(workdir / "results.json")]
    return subprocess.run(cmd, env=env, timeout=TIMEOUT,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True)


def cache_entries(workdir: Path) -> list[Path]:
    """Every regular cache entry file (quarantine excluded by name)."""
    root = workdir / "cache"
    return sorted(p for p in root.glob("??/*.json") if p.is_file())


def quarantined(workdir: Path) -> list[Path]:
    qdir = workdir / "cache" / "quarantine"
    return sorted(qdir.iterdir()) if qdir.is_dir() else []


def crash_then_resume(base: Path, name: str, crash_after: int,
                      golden: bytes, failures: list,
                      corrupt_one_entry: bool = False) -> None:
    workdir = base / name
    workdir.mkdir()
    crashed = run_campaign(workdir, crash_after=crash_after)
    check(crashed.returncode == -signal.SIGKILL,
          f"{name}: campaign SIGKILLed itself after record {crash_after} "
          f"(rc={crashed.returncode})", failures)
    records = read_records(workdir / "campaign.wal")
    check(len(records) == crash_after,
          f"{name}: journal holds exactly the {crash_after} records that "
          f"were durable at the kill (found {len(records)})", failures)
    # atomic_write's guarantee: the results file either doesn't exist yet
    # or is the complete payload — a torn intermediate is impossible
    results = workdir / "results.json"
    check(not results.exists() or results.read_bytes() == golden,
          f"{name}: results file after the crash is absent or complete, "
          "never torn", failures)
    if corrupt_one_entry:
        entries = cache_entries(workdir)
        check(bool(entries), f"{name}: crashed run left cache entries to corrupt",
              failures)
        if entries:
            victim = entries[0]
            raw = bytearray(victim.read_bytes())
            raw[-10] ^= 0xFF
            victim.write_bytes(bytes(raw))
            print(f"    flipped one byte of {victim.name[:12]}…")
    resumed = run_campaign(workdir, resume=True)
    check(resumed.returncode == 0,
          f"{name}: resume exited 0 (rc={resumed.returncode})", failures)
    if resumed.returncode != 0:
        print(resumed.stdout)
        return
    check((workdir / "results.json").read_bytes() == golden,
          f"{name}: resumed results are byte-identical to golden", failures)
    leaks = quarantined(workdir)
    want = 1 if corrupt_one_entry else 0
    check(len(leaks) == want,
          f"{name}: {want} quarantined file(s) after resume (found {len(leaks)})",
          failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--crash-points", type=int, default=3,
                        help="distinct SIGKILL points to exercise (>= 1; "
                        "CI uses >= 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="crash-point sampling seed")
    args = parser.parse_args()
    if args.crash_points < 1:
        parser.error(f"--crash-points must be >= 1, got {args.crash_points}")

    failures: list = []
    base = Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    try:
        golden_dir = base / "golden"
        golden_dir.mkdir()
        golden_run = run_campaign(golden_dir)
        if golden_run.returncode != 0:
            print(golden_run.stdout)
            print("FAIL: golden campaign did not complete")
            return 1
        golden = (golden_dir / "results.json").read_bytes()
        n_records = len(read_records(golden_dir / "campaign.wal"))
        print(f"golden campaign: {n_records} journal records, "
              f"{len(golden)} result bytes")
        check(len(quarantined(golden_dir)) == 0,
              "golden: zero quarantined files", failures)

        # records 2..N: after the header, through the final checkpoint
        rng = random.Random(args.seed)
        points = rng.sample(range(2, n_records + 1),
                            min(args.crash_points, n_records - 1))
        for n in sorted(points):
            crash_then_resume(base, f"crash-at-{n}", n, golden, failures)

        # corruption scenario: crash mid-campaign, then poison one
        # committed cache entry before resuming
        check(bool(points), "sampled at least one crash point", failures)
        if points:
            crash_then_resume(base, "corrupt-entry", max(points), golden,
                              failures, corrupt_one_entry=True)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    if failures:
        print(f"\n{len(failures)} crash-smoke failure(s)")
        return 1
    print(f"\ncrash smoke passed: {len(points)} kill point(s) + corruption "
          "recovery, all byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
