"""Calibration helper: quick per-benchmark gain check (developer tool)."""
import sys, time
from repro import OpenMPRuntime, zen4_9354
from repro.workloads import make_benchmark

topo = zen4_9354()
names = sys.argv[1:] or ["ft","bt","cg","lu","sp","matmul","lulesh"]
scheds = ["baseline","ilan","ilan-nomold","worksharing"]
print(f"{'bench':8} " + " ".join(f"{s:>11}" for s in scheds) + f" {'ilan%':>7} {'nomold%':>8} {'ws%':>7} {'thr':>6}")
for name in names:
    app = make_benchmark(name, timesteps=24)
    times = {}; thr=0
    for s in scheds:
        res = OpenMPRuntime(topo, scheduler=s, seed=0).run_application(app)
        times[s]=res.total_time
        if s=="ilan": thr=res.weighted_avg_threads
    b=times["baseline"]
    print(f"{name:8} " + " ".join(f"{times[s]:11.4f}" for s in scheds) +
          f" {100*(b/times['ilan']-1):+7.1f} {100*(b/times['ilan-nomold']-1):+8.1f} {100*(b/times['worksharing']-1):+7.1f} {thr:6.1f}")
