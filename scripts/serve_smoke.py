"""End-to-end smoke test of the multi-tenant scheduling service.

Starts a service on an ephemeral port, has three concurrent clients
submit jobs over the wire, asserts that

* every job completes (none rejected, none failed),
* every granted lease is the requested size and inside the machine,
* the final metrics snapshot accounts for every submitted job, and
* a graceful drain exits cleanly with zero pending jobs.

Exits non-zero on violation; CI runs this to keep the served path
exercised end-to-end.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--clients 3] [--jobs 4]
                                                 [--machine small] [--nodes 2]
"""

import argparse
import asyncio
import sys

from repro.exp.cliopts import add_machine_argument, resolve_machine
from repro.exp.runner import ExperimentConfig
from repro.serve.client import ServiceClient
from repro.serve.protocol import JobRequest
from repro.serve.server import SchedulingService

TIMEOUT = 120


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


async def run(args: argparse.Namespace, failures: list) -> None:
    topology = resolve_machine(args.machine)
    service = SchedulingService(
        topology,
        config=ExperimentConfig(seeds=1, timesteps=args.timesteps,
                                with_noise=False, jobs=1, cache_dir=None),
    )
    host, port = await service.start("127.0.0.1", 0)
    print(f"service on {host}:{port} ({topology.describe()})")

    async def client(tenant: str) -> list[dict]:
        jobs = []
        async with await ServiceClient.connect(host, port) as cli:
            for _ in range(args.jobs):
                job_id = await cli.submit(
                    JobRequest(benchmark=args.benchmark, seeds=1,
                               timesteps=args.timesteps, nodes=args.nodes,
                               tenant=tenant)
                )
                jobs.append(await cli.wait(job_id, timeout=TIMEOUT))
        return jobs

    per_client = await asyncio.wait_for(
        asyncio.gather(*(client(f"tenant-{i}") for i in range(args.clients))),
        timeout=TIMEOUT,
    )
    jobs = [job for batch in per_client for job in batch]
    expected = args.clients * args.jobs

    check(len(jobs) == expected, f"all {expected} submitted jobs finished", failures)
    states = {job["state"] for job in jobs}
    check(states == {"completed"}, f"every job completed (states: {sorted(states)})",
          failures)
    check(
        all(len(job["lease_nodes"]) == args.nodes for job in jobs),
        f"every lease is exactly {args.nodes} node(s)", failures,
    )
    machine_nodes = set(range(topology.num_nodes))
    check(
        all(set(job["lease_nodes"]) <= machine_nodes for job in jobs),
        "every lease is inside the machine's node set", failures,
    )

    async with await ServiceClient.connect(host, port) as cli:
        snapshot = await asyncio.wait_for(cli.drain(), timeout=TIMEOUT)
    m = snapshot["jobs"]
    check(m["submitted"] == expected, f"metrics count {expected} submissions", failures)
    check(
        m["submitted"] == m["completed"] + m["failed"] + m["active"] + m["queued"],
        "metrics conserve every submitted job", failures,
    )
    check(
        (m["active"], m["queued"], snapshot["queue"]["depth"]) == (0, 0, 0),
        "graceful drain left zero pending jobs", failures,
    )
    check(
        all(owner is None for owner in snapshot["nodes"]["leases"].values()),
        "all leases returned after drain", failures,
    )
    lat = m["latency"]
    print(f"throughput {m['throughput_jps']:.1f} jobs/s, "
          f"p50 {lat['p50_s']*1e3:.1f} ms, p95 {lat['p95_s']*1e3:.1f} ms")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=4, help="jobs per client")
    parser.add_argument("--nodes", type=int, default=2, help="lease size per job")
    parser.add_argument("--benchmark", default="matmul")
    parser.add_argument("--timesteps", type=int, default=3)
    add_machine_argument(parser, default="small")
    args = parser.parse_args(argv)

    failures: list = []
    asyncio.run(run(args, failures))
    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nservice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
