"""Self-healing federation smoke: silent crash, detection, warm respawn.

Runs two seeded scenarios — each twice, asserting byte-identical
canonical reports — against a 3-shard fleet with the membership layer
and a supervised respawn budget:

**warm scenario** (the main path): a shard is scheduled to die *after*
every tenant checkpointed at least once and after a heartbeat archived
those checkpoints.  The crash is silent; the failure detector confirms
it after the configured missed-poll thresholds; the displaced tenants'
PTT state migrates to their new owners (``migrations_completed``, zero
``migrations_dropped``); the stashed orphans are adopted; the supervisor
respawns the shard at epoch 1; and one extra shard joins live mid-run.
The acceptance criterion is checked exactly: fleet-wide cold bootstraps
equal the number of distinct (tenant, benchmark) pairs — a cleanly
migrated tenant **never re-bootstraps**.

**early-crash scenario** (graceful degradation): the shard dies before
the first heartbeat could archive anything, so its tenants' state is
lost; recovery still conserves every job and the loss is tallied under
``migrations_dropped`` — never silently.

Shared invariants across both: fleet-wide job conservation summed over
*every* shard incarnation (the dead epoch-0 instance and its respawn are
separate snapshot entries), zero leaked leases on any incarnation, all
jobs terminal, and byte-identical same-seed replays.  Usage::

    PYTHONPATH=src python scripts/membership_smoke.py [--jobs 24]
"""

import argparse
import asyncio
import json
import sys

from repro.exp.cliopts import add_machine_argument, resolve_machine
from repro.exp.runner import ExperimentConfig
from repro.serve.federation import (
    FederationRouter,
    Membership,
    ShardFaultPlan,
    ShardSupervisor,
    build_shard,
    build_shards,
    respawn_factory,
)
from repro.serve.protocol import JobRequest


def check(cond: bool, message: str, failures: list) -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {message}")
    if not cond:
        failures.append(message)


async def quiesce(router: FederationRouter) -> None:
    """Wait (real time, but not reported) until nothing is in flight.

    The smoke uses this between scenario phases so every tenant's
    checkpoints exist *before* the crash point is derived; the reported
    state is the deterministic fixed point, never the waiting itself.
    """
    while True:
        states = router.job_states()
        if states["queued"] == states["running"] == 0:
            return
        await asyncio.sleep(0.01)


async def membership_run(args: argparse.Namespace, *, scenario: str) -> dict:
    """One self-healing scenario; returns a canonical wall-clock-free report.

    ``scenario="warm"``: half the jobs run to quiescence first (every
    tenant checkpoints), then the victim's crash is scheduled two
    placements ahead on its own clock — past at least one heartbeat
    pull, so its tenants' state is archived when it dies.
    ``scenario="early"``: the victim dies on its very first absorbed
    placement, before anything could checkpoint — the loss path.
    """
    config = ExperimentConfig(seeds=1, timesteps=args.timesteps,
                              with_noise=False, jobs=1, cache_dir=None)

    def topology():
        return resolve_machine(args.machine)

    shards = build_shards(
        args.shards, topology, config=config,
        queue_capacity=max(args.jobs, 16), workers=1,
    )
    plan = ShardFaultPlan(0.0, seed=args.fault_seed)
    membership = Membership(heartbeat_every=args.heartbeat_every,
                            suspect_after=args.suspect_after,
                            confirm_after=args.confirm_after)
    supervisor = ShardSupervisor(
        respawn_factory(topology, config=config,
                        queue_capacity=max(args.jobs, 16), workers=1),
        max_respawns=1,
    )
    router = FederationRouter(shards, seed=args.ring_seed,
                              shard_fault_plan=plan,
                              membership=membership, supervisor=supervisor)
    await router.start()

    def job(i: int) -> JobRequest:
        return JobRequest(benchmark=args.benchmark, timesteps=args.timesteps,
                          nodes=1, tenant=f"tenant-{i % args.tenants}")

    first_batch = args.jobs // 2
    if scenario == "warm":
        for i in range(first_batch):
            await router.submit(job(i))
        await quiesce(router)
        victim = router.shards[args.kill_shard]
        # two placements ahead: the first one's heartbeat archives the
        # victim's (now quiescent, dirty) checkpoints, the second kills it
        plan.scheduled[args.kill_shard] = victim.placements + 2
        remaining = range(first_batch, args.jobs)
    else:
        plan.scheduled[args.kill_shard] = 1
        remaining = range(args.jobs)

    joined = False
    for i in remaining:
        if (scenario == "warm" and not joined
                and router.placements >= args.join_at):
            joiner = build_shard(f"shard-{args.shards}", topology,
                                 config=config,
                                 queue_capacity=max(args.jobs, 16), workers=1)
            await router.join_shard(joiner)
            joined = True
        await router.submit(job(i))
    snapshot = await router.drain()

    tenancy = {
        iid: shard["tenancy"]
        for iid, shard in snapshot["shards"].items()
    }
    return {
        "decisions": plan.decisions(),
        "crashed": list(plan.crashed),
        "dead": snapshot["fleet"]["dead"],
        "alive": snapshot["fleet"]["alive"],
        "membership": snapshot["membership"],
        "counters": {
            "placements": router.placements,
            "shard_deaths": router.shard_deaths,
            "requeued_jobs": router.requeued_jobs,
        },
        "job_states": snapshot["router"]["job_states"],
        "jobs": {
            fed_id: {
                "tenant": job["tenant"],
                "shard": job["shard"],
                "placements": job["placements"],
                "state": job["state"],
            }
            for fed_id, job in snapshot["jobs"].items()
        },
        "shard_jobs": {
            iid: {
                key: value
                for key, value in shard["jobs"].items()
                if key not in ("latency", "throughput_jps")  # wall-clock
            }
            for iid, shard in snapshot["shards"].items()
        },
        "tenancy": tenancy,
        "leases": {
            iid: shard["nodes"]["leases"]
            for iid, shard in snapshot["shards"].items()
        },
    }


def verify_common(report: dict, label: str, args: argparse.Namespace,
                  failures: list) -> None:
    """Invariants both scenarios must hold."""
    membership = report["membership"]
    check(report["counters"]["shard_deaths"] >= 1,
          f"{label}: the scheduled crash fired ({report['crashed']})", failures)
    check(membership["deaths_confirmed"] >= 1,
          f"{label}: the failure detector confirmed the death "
          f"({membership['heartbeats']} heartbeat(s))", failures)
    respawns = membership["respawns"] or {}
    check(respawns.get("respawns_total", 0) >= 1,
          f"{label}: the supervisor respawned the dead shard", failures)
    check(membership["epochs"].get(args.kill_shard) == 1,
          f"{label}: {args.kill_shard} is back at epoch 1", failures)
    check(args.kill_shard in report["alive"],
          f"{label}: the respawned incarnation is alive in the fleet", failures)
    check(args.kill_shard in report["dead"],
          f"{label}: the dead epoch-0 incarnation is still accounted for",
          failures)

    conserved = True
    for iid, jobs in sorted(report["shard_jobs"].items()):
        if jobs["submitted"] != (jobs["completed"] + jobs["failed"]
                                 + jobs["active"] + jobs["queued"]
                                 + jobs["evicted"]):
            conserved = False
    check(conserved,
          f"{label}: conservation holds on every incarnation, including the "
          f"respawned shard ({len(report['shard_jobs'])} instance snapshots)",
          failures)

    states = report["job_states"]
    check(states["completed"] + states["failed"] == args.jobs,
          f"{label}: all {args.jobs} jobs terminal through the router "
          f"({states['completed']} completed, {states['failed']} failed)",
          failures)
    check(states["queued"] == states["running"] == 0,
          f"{label}: the federation converged (nothing in flight)", failures)
    # a job that *completed* on the victim before the silent crash stays
    # attributed to the dead incarnation — only unfinished work must move
    stranded = [
        fed_id for fed_id, j in report["jobs"].items()
        if j["shard"] in report["dead"]
        and j["state"] not in ("completed", "failed")
    ]
    check(not stranded,
          f"{label}: no unfinished job left on a dead incarnation", failures)

    leaked = [
        (iid, node)
        for iid, leases in report["leases"].items()
        for node, owner in leases.items()
        if owner is not None
    ]
    check(not leaked, f"{label}: zero leaked leases across "
          f"{len(report['leases'])} incarnation lease maps", failures)


def verify_warm(report: dict, label: str, args: argparse.Namespace,
                failures: list) -> None:
    membership = report["membership"]
    check(membership["migrations_completed"] >= 1,
          f"{label}: displaced tenants migrated warm "
          f"({membership['migrations_completed']} tenant(s))", failures)
    check(membership["migrations_dropped"] == 0,
          f"{label}: nothing was dropped (the crash came after checkpoints)",
          failures)
    for entry in membership["migration_log"]:
        target = entry["to"]
        pairs = (report["tenancy"].get(target, {})
                 .get("state", {}).get("generations", {}))
        check(any(key.startswith(entry["tenant"] + "/") for key in pairs),
              f"{label}: {entry['tenant']} state landed on {target} "
              f"({entry['docs']} doc(s))", failures)
    distinct_pairs = min(args.jobs, args.tenants)  # one benchmark per tenant
    cold = sum(t["cold_bootstraps"] for t in report["tenancy"].values())
    warm = sum(t["warm_starts"] for t in report["tenancy"].values())
    check(cold == distinct_pairs,
          f"{label}: fleet-wide cold bootstraps == {distinct_pairs} distinct "
          f"(tenant, benchmark) pairs — migrated tenants never re-bootstrap "
          f"(cold={cold}, warm={warm})", failures)
    check(membership["detector"]["counters"]["joins"] >= args.shards + 2,
          f"{label}: live join + respawn rejoin both went through the "
          "membership join path", failures)


def verify_early(report: dict, label: str, args: argparse.Namespace,
                 failures: list) -> None:
    membership = report["membership"]
    check(membership["migrations_dropped"] >= 1,
          f"{label}: the pre-checkpoint crash was tallied as dropped "
          f"({membership['migrations_dropped']} tenant(s))", failures)
    check(membership["migrations_completed"] == 0,
          f"{label}: nothing could migrate warm (no checkpoint existed)",
          failures)
    dropped = [e["tenant"] for e in membership["migration_log"]
               if e["to"] is None]
    alive_pairs = {
        key
        for iid, t in report["tenancy"].items()
        if iid not in report["dead"]
        for key in t.get("state", {}).get("generations", {})
    }
    check(all(any(key.startswith(t + "/") for key in alive_pairs)
              for t in dropped),
          f"{label}: every dropped tenant bootstrapped fresh on a survivor "
          f"({dropped})", failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=24)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--benchmark", default="matmul")
    parser.add_argument("--timesteps", type=int, default=3)
    parser.add_argument("--kill-shard", default="shard-1")
    parser.add_argument("--join-at", type=int, default=12,
                        help="router-clock placements before the live join "
                        "(warm scenario)")
    parser.add_argument("--heartbeat-every", type=int, default=1)
    parser.add_argument("--suspect-after", type=int, default=1)
    parser.add_argument("--confirm-after", type=int, default=2)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--ring-seed", type=int, default=3)
    add_machine_argument(parser, default="small")
    args = parser.parse_args(argv)

    failures: list = []

    print(f"-- warm scenario: checkpoint, then kill {args.kill_shard}; "
          f"join at router-clock {args.join_at}")
    warm1 = asyncio.run(membership_run(args, scenario="warm"))
    verify_common(warm1, "warm run 1", args, failures)
    verify_warm(warm1, "warm run 1", args, failures)
    warm2 = asyncio.run(membership_run(args, scenario="warm"))
    verify_common(warm2, "warm run 2", args, failures)
    verify_warm(warm2, "warm run 2", args, failures)
    a = json.dumps(warm1, sort_keys=True).encode()
    b = json.dumps(warm2, sort_keys=True).encode()
    check(a == b, "warm: the two seeded runs are byte-identical "
          f"({len(a)} bytes of canonical report)", failures)

    print("-- early-crash scenario: kill before the first checkpoint")
    early1 = asyncio.run(membership_run(args, scenario="early"))
    verify_common(early1, "early run 1", args, failures)
    verify_early(early1, "early run 1", args, failures)
    early2 = asyncio.run(membership_run(args, scenario="early"))
    a = json.dumps(early1, sort_keys=True).encode()
    b = json.dumps(early2, sort_keys=True).encode()
    check(a == b, "early: the two seeded runs are byte-identical "
          f"({len(a)} bytes of canonical report)", failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nmembership smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
